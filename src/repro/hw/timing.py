"""Kernel -> execution time dispatch.

Assigns a time to every :class:`~repro.ops.base.Kernel` on a
:class:`~repro.hw.device.DeviceModel`:

* (batched) GEMMs go through the tile/wave model of
  :mod:`repro.hw.gemm_model`;
* elementwise/reduction/gather kernels are memory-streaming-limited, with a
  vector-arithmetic floor for math-heavy kernels (erf, exp);
* communication kernels are priced by the distributed model, not here, and
  are rejected.

Every kernel pays the device's launch overhead — the term that makes the
unfused-optimizer kernel storms of Fig. 12 expensive despite tiny sizes.

:func:`kernel_times` is the **single timing entry point**: it batches the
GEMM tile-efficiency and achieved-bandwidth models over a whole columnar
:class:`~repro.trace.kernel_table.KernelTable` at once, memoizing GEMM
times per ``(shape, dtype, device)`` since a trace contains only a few
dozen distinct shapes.  Both :func:`trace_time` and
:func:`repro.profiler.profiler.profile_trace` are thin wrappers over it,
so the two can no longer drift apart.  The scalar :func:`kernel_time`
remains for single-kernel queries and as the reference implementation the
golden equivalence test checks the batched path against.
"""

from __future__ import annotations

import weakref
from typing import Iterable

import numpy as np

from repro.hw.device import DeviceModel
from repro.hw.gemm_model import batch_gemm_times, gemm_time
from repro.obs import metrics, spans
from repro.ops.base import DType, Kernel, OpClass
from repro.trace.kernel_table import ACCESS_PATTERNS, DTYPES, KernelTable

#: GEMM-time memo traffic, labeled ``result=hit|miss``.  One lookup per
#: distinct ``(shape, dtype)`` pair per :func:`kernel_times` call — a few
#: dozen per trace — so the counter costs nothing on the hot path.
_MEMO_LOOKUPS = metrics.counter(
    "gemm_memo.lookups", "GEMM-time memo lookups by result")


def _vector_peak(device: DeviceModel, dtype: DType) -> float:
    """Vector-pipeline FLOP/s for ``dtype``, falling back to FP32."""
    tflops = device.vector_tflops.get(dtype)
    if tflops is None:
        tflops = device.vector_tflops[DType.FP32]
    return tflops * 1e12


def kernel_time(kernel: Kernel, device: DeviceModel) -> float:
    """Execution time of one kernel, in seconds."""
    if kernel.op_class is OpClass.COMMUNICATION:
        raise ValueError(
            f"communication kernel {kernel.name!r} must be priced by "
            "repro.distributed, not the device timing model")

    if kernel.op_class.is_gemm:
        if kernel.gemm is None:
            raise ValueError(f"GEMM kernel {kernel.name!r} missing shape")
        if kernel.flops == kernel.gemm.flops:
            return gemm_time(kernel.gemm, kernel.dtype, device).total_s
        # Fused GEMM kernel (e.g. fused attention): the anchor shape sets
        # the tiling efficiency; totals come from the kernel record.
        from repro.hw.gemm_model import shape_efficiency

        engine = device.gemm_engine(kernel.dtype)
        efficiency = shape_efficiency(kernel.gemm, device)
        compute_s = kernel.flops / (engine.effective_peak * efficiency)
        ceiling = device.gemm_mem_efficiency * device.peak_bandwidth
        ramp = kernel.bytes_total / (kernel.bytes_total
                                     + device.bw_saturation_bytes)
        memory_s = kernel.bytes_total / (ceiling * max(ramp, 1e-9))
        return max(compute_s, memory_s) + device.kernel_launch_overhead_s

    bandwidth = device.achieved_bandwidth(kernel.access, kernel.bytes_total)
    memory_s = kernel.bytes_total / bandwidth if kernel.bytes_total else 0.0
    compute_s = kernel.flops / _vector_peak(device, kernel.dtype)
    return max(memory_s, compute_s) + device.kernel_launch_overhead_s


# ---------------------------------------------------------------------------
# Batched evaluation over a columnar table
# ---------------------------------------------------------------------------

# Per-device memo of GEMM total times keyed by (GemmShape, DType).  Devices
# are frozen dataclasses whose dict-valued fields make them unhashable, so
# the outer key is id(device) guarded by a weakref: an entry is valid only
# while its weakref still resolves to the *same* object, and a finalizer
# evicts it on collection (id reuse can therefore never alias two devices).
_gemm_memo: dict[int, tuple[weakref.ref, dict]] = {}


def _device_gemm_memo(device: DeviceModel) -> dict:
    key = id(device)
    entry = _gemm_memo.get(key)
    if entry is not None and entry[0]() is device:
        return entry[1]
    memo: dict = {}

    def _evict(_ref, key=key):
        _gemm_memo.pop(key, None)

    _gemm_memo[key] = (weakref.ref(device, _evict), memo)
    return memo


def _gemm_rows_times(table: KernelTable, rows: np.ndarray,
                     device: DeviceModel, out: np.ndarray) -> None:
    """Fill ``out[rows]`` with GEMM kernel times.

    Pure GEMMs (kernel flops match the shape's) are memoized per
    ``(shape, dtype, device)`` and evaluated through the batched tile/wave
    model; fused GEMM records (flops beyond the anchor shape) fall back to
    the scalar path row by row.
    """
    memo = _device_gemm_memo(device)
    missing_shape = rows[table.gemm_code[rows] < 0]
    if len(missing_shape):
        name = table.names[int(table.name_code[missing_shape[0]])]
        raise ValueError(f"GEMM kernel {name!r} missing shape")

    shape_flops = np.array([s.flops for s in table.gemms], dtype=np.int64)
    pure = table.flops[rows] == shape_flops[table.gemm_code[rows]]
    for row in rows[~pure]:
        out[row] = kernel_time(table.kernel(int(row)), device)

    pure_rows = rows[pure]
    if not len(pure_rows):
        return
    # One lookup key per (shape, dtype) pair; a trace has a few dozen.
    pair = (table.gemm_code[pure_rows].astype(np.int64) * len(DTYPES)
            + table.dtype[pure_rows])
    unique_pairs, inverse = np.unique(pair, return_inverse=True)
    lookups = len(unique_pairs)
    values = np.empty(len(unique_pairs), dtype=np.float64)
    todo: list[tuple[int, int, int]] = []  # (slot, gemm code, dtype code)
    for slot, pair_code in enumerate(unique_pairs):
        gemm_code, dtype_code = divmod(int(pair_code), len(DTYPES))
        cached = memo.get((table.gemms[gemm_code], DTYPES[dtype_code]))
        if cached is None:
            todo.append((slot, gemm_code, dtype_code))
        else:
            values[slot] = cached
    # Batch the misses through the vectorized tile/wave model, per dtype.
    for dtype_code in sorted({t[2] for t in todo}):
        group = [t for t in todo if t[2] == dtype_code]
        shapes = [table.gemms[g] for _, g, _ in group]
        times = batch_gemm_times(shapes, DTYPES[dtype_code], device)
        for (slot, gemm_code, _), time_s in zip(group, times):
            time_s = float(time_s)
            values[slot] = time_s
            memo[(table.gemms[gemm_code], DTYPES[dtype_code])] = time_s
    if len(todo):
        _MEMO_LOOKUPS.inc(len(todo), result="miss")
    if lookups - len(todo):
        _MEMO_LOOKUPS.inc(lookups - len(todo), result="hit")
    out[pure_rows] = values[inverse]


def kernel_times(kernels: "KernelTable | Iterable[Kernel]",
                 device: DeviceModel) -> np.ndarray:
    """Execution time of every kernel, in seconds, vectorized.

    Accepts a :class:`KernelTable`, a table-backed
    :class:`~repro.trace.builder.Trace`, or any kernel iterable (converted
    to a table first).  Per-kernel results are identical to calling
    :func:`kernel_time` row by row.
    """
    table = KernelTable.coerce(kernels)
    with spans.span("timing.kernel_times", kernels=len(table),
                    device=device.name):
        return _kernel_times_table(table, device)


def _kernel_times_table(table: KernelTable,
                        device: DeviceModel) -> np.ndarray:
    comm = table.is_communication.nonzero()[0]
    if len(comm):
        name = table.names[int(table.name_code[comm[0]])]
        raise ValueError(
            f"communication kernel {name!r} must be priced by "
            "repro.distributed, not the device timing model")

    out = np.empty(len(table), dtype=np.float64)
    gemm_mask = table.is_gemm
    gemm_rows = gemm_mask.nonzero()[0]
    if len(gemm_rows):
        _gemm_rows_times(table, gemm_rows, device, out)

    other = ~gemm_mask
    if other.any():
        bytes_total = table.bytes_total[other]
        dtype_code = table.dtype[other]
        access_code = table.access[other]

        # device.achieved_bandwidth, batched: per-pattern ceiling scaled by
        # the occupancy ramp; zero-byte kernels take the compute path only.
        ceilings = np.array(
            [device.mem_efficiency[p] * device.peak_bandwidth
             for p in ACCESS_PATTERNS], dtype=np.float64)
        ramp = bytes_total / (bytes_total + device.bw_saturation_bytes)
        bandwidth = ceilings[access_code] * ramp
        memory_s = np.divide(bytes_total, bandwidth,
                             out=np.zeros(len(bytes_total)),
                             where=bytes_total > 0)

        peaks = np.array([_vector_peak(device, dt) for dt in DTYPES],
                         dtype=np.float64)
        compute_s = table.flops[other] / peaks[dtype_code]
        out[other] = (np.maximum(memory_s, compute_s)
                      + device.kernel_launch_overhead_s)
    return out


def trace_time(kernels: "KernelTable | Iterable[Kernel]",
               device: DeviceModel) -> float:
    """Total serialized execution time of a kernel sequence.

    The paper profiles eager, stream-serialized execution, so kernel times
    add; overlap only enters through the distributed model.
    """
    return float(np.sum(kernel_times(kernels, device)))
