"""Kernel -> execution time dispatch.

Assigns a time to every :class:`~repro.ops.base.Kernel` on a
:class:`~repro.hw.device.DeviceModel`:

* (batched) GEMMs go through the tile/wave model of
  :mod:`repro.hw.gemm_model`;
* elementwise/reduction/gather kernels are memory-streaming-limited, with a
  vector-arithmetic floor for math-heavy kernels (erf, exp);
* communication kernels are priced by the distributed model, not here, and
  are rejected.

Every kernel pays the device's launch overhead — the term that makes the
unfused-optimizer kernel storms of Fig. 12 expensive despite tiny sizes.
"""

from __future__ import annotations

from repro.hw.device import DeviceModel
from repro.hw.gemm_model import gemm_time
from repro.ops.base import DType, Kernel, OpClass


def _vector_peak(device: DeviceModel, dtype: DType) -> float:
    """Vector-pipeline FLOP/s for ``dtype``, falling back to FP32."""
    tflops = device.vector_tflops.get(dtype)
    if tflops is None:
        tflops = device.vector_tflops[DType.FP32]
    return tflops * 1e12


def kernel_time(kernel: Kernel, device: DeviceModel) -> float:
    """Execution time of one kernel, in seconds."""
    if kernel.op_class is OpClass.COMMUNICATION:
        raise ValueError(
            f"communication kernel {kernel.name!r} must be priced by "
            "repro.distributed, not the device timing model")

    if kernel.op_class.is_gemm:
        if kernel.gemm is None:
            raise ValueError(f"GEMM kernel {kernel.name!r} missing shape")
        if kernel.flops == kernel.gemm.flops:
            return gemm_time(kernel.gemm, kernel.dtype, device).total_s
        # Fused GEMM kernel (e.g. fused attention): the anchor shape sets
        # the tiling efficiency; totals come from the kernel record.
        from repro.hw.gemm_model import shape_efficiency

        engine = device.gemm_engine(kernel.dtype)
        efficiency = shape_efficiency(kernel.gemm, device)
        compute_s = kernel.flops / (engine.effective_peak * efficiency)
        ceiling = device.gemm_mem_efficiency * device.peak_bandwidth
        ramp = kernel.bytes_total / (kernel.bytes_total
                                     + device.bw_saturation_bytes)
        memory_s = kernel.bytes_total / (ceiling * max(ramp, 1e-9))
        return max(compute_s, memory_s) + device.kernel_launch_overhead_s

    bandwidth = device.achieved_bandwidth(kernel.access, kernel.bytes_total)
    memory_s = kernel.bytes_total / bandwidth if kernel.bytes_total else 0.0
    compute_s = kernel.flops / _vector_peak(device, kernel.dtype)
    return max(memory_s, compute_s) + device.kernel_launch_overhead_s


def trace_time(kernels: list[Kernel], device: DeviceModel) -> float:
    """Total serialized execution time of a kernel sequence.

    The paper profiles eager, stream-serialized execution, so kernel times
    add; overlap only enters through the distributed model.
    """
    return sum(kernel_time(kernel, device) for kernel in kernels)
