"""Deterministic chaos: seeded fault plans injected at named sites.

Compile a spec into a plan, activate it, and the instrumented
subsystems — the runner's disk cache, the experiment executor, the
profiling server, the collective simulator — start failing on a
reproducible schedule::

    from repro import faults

    plan = faults.FaultPlan.parse(
        "cache.corrupt:0.1,worker.kill:0.2,compute.slow:50ms", seed=7)
    faults.activate(plan)

The headline invariant (pinned by ``tests/test_chaos_determinism.py``
and ``scripts/check_chaos.py``): under any seeded plan, completed
results are byte-identical to the fault-free run.  Faults cost time —
retries, recomputes, sleeps — never correctness.
"""

from repro.faults.plan import (FaultDecision, FaultPlan, FaultRule,
                               parse_duration, parse_rule, site_uniform)
from repro.faults.sites import (FAULTS_ENV, FAULTS_SEED_ENV, InjectedFault,
                                InjectedWorkerKill, activate, active_plan,
                                corrupt_bytes, deactivate, decide,
                                export_to_env, inject, inject_delay,
                                inject_failure, plan_from_env)

__all__ = [
    "FaultDecision", "FaultPlan", "FaultRule", "parse_duration",
    "parse_rule", "site_uniform",
    "FAULTS_ENV", "FAULTS_SEED_ENV", "InjectedFault", "InjectedWorkerKill",
    "activate", "active_plan", "corrupt_bytes", "deactivate", "decide",
    "export_to_env", "inject", "inject_delay", "inject_failure",
    "plan_from_env",
]
