"""Named fault sites and the process-wide active plan.

A *fault site* is a line in a production subsystem where a failure could
really happen: a pickle load off disk (``cache.corrupt``), an experiment
worker mid-run (``worker.kill``), an engine compute (``compute.slow`` /
``compute.fail``), a serve-side render (``serve.fail`` / ``serve.slow``).
Instrumented code calls the helpers here at those lines; with no active
plan the helpers are a single ``None`` check (the chaos benchmark pins
the inactive overhead below 2%), and with one they consult the plan's
deterministic schedule.

Activation is either explicit (:func:`activate`, used by tests and the
chaos harness) or environment-driven: ``REPRO_FAULTS`` holds a spec
string and ``REPRO_FAULTS_SEED`` the seed, read once lazily — which is
exactly how a plan reaches ``repro run --jobs N`` worker processes.

Every injection increments ``fault.injected{site=}`` and annotates the
current span with ``fault.site`` / ``fault.index``, so injected faults
are visible in span dumps, the flight recorder and ``/metrics``.
"""

from __future__ import annotations

import os
import time

from repro.faults.plan import FaultDecision, FaultPlan
from repro.obs import metrics, spans

#: Environment variables carrying a plan into child processes.
FAULTS_ENV = "REPRO_FAULTS"
FAULTS_SEED_ENV = "REPRO_FAULTS_SEED"

_INJECTED = metrics.counter(
    "fault.injected", "fault injections by site")
_DELAY_S = metrics.counter(
    "fault.delay_seconds", "seconds of injected slowdown by site")


class InjectedFault(Exception):
    """A failure scheduled by the active :class:`FaultPlan`.

    Transient by construction — the resilience policies (runner retries,
    the serve breaker) are expected to absorb it; it carries the site and
    occurrence index so retries and tests can reason about the schedule.
    """

    def __init__(self, decision: FaultDecision):
        super().__init__(f"injected fault at {decision.site} "
                         f"(occurrence {decision.index})")
        self.site = decision.site
        self.index = decision.index


class InjectedWorkerKill(InjectedFault):
    """The ``worker.kill`` site: models an experiment worker dying."""


_plan: FaultPlan | None = None
_env_loaded = False


def activate(plan: FaultPlan | None) -> None:
    """Install ``plan`` process-wide (``None`` deactivates)."""
    global _plan, _env_loaded
    _plan = plan
    _env_loaded = True  # explicit activation overrides the environment


def deactivate() -> None:
    """Remove any active plan and forget the environment read."""
    global _plan, _env_loaded
    _plan = None
    _env_loaded = False


def plan_from_env() -> FaultPlan | None:
    """The plan ``REPRO_FAULTS``/``REPRO_FAULTS_SEED`` describe, if any."""
    spec = os.environ.get(FAULTS_ENV, "").strip()
    if not spec:
        return None
    return FaultPlan.parse(spec, seed=int(os.environ.get(FAULTS_SEED_ENV,
                                                         "0")))


def export_to_env(plan: FaultPlan) -> None:
    """Publish ``plan`` to the environment so child processes inherit it."""
    os.environ[FAULTS_ENV] = plan.spec()
    os.environ[FAULTS_SEED_ENV] = str(plan.seed)


def active_plan() -> FaultPlan | None:
    """The process-wide plan (reads the environment once, lazily)."""
    global _plan, _env_loaded
    if not _env_loaded:
        _plan = plan_from_env()
        _env_loaded = True
    return _plan


# ------------------------------------------------------------------ helpers
def decide(site: str) -> FaultDecision | None:
    """Consume one occurrence of ``site``; the injection decision or None.

    The inactive fast path — no plan, or a plan without this site — is a
    global read plus (with a plan) one dict lookup.
    """
    plan = _plan if _env_loaded else active_plan()
    if plan is None:
        return None
    decision = plan.decide(site)
    if decision is None:
        return None
    _INJECTED.inc(site=site)
    spans.annotate(**{"fault.site": site, "fault.index": decision.index})
    return decision


def inject(site: str) -> None:
    """Apply ``site``'s scheduled effect: sleep for delay rules, raise
    :class:`InjectedFault` for failure rules, nothing otherwise."""
    decision = decide(site)
    if decision is None:
        return
    if decision.delay_s:
        _DELAY_S.inc(decision.delay_s, site=site)
        time.sleep(decision.delay_s)
        return
    raise InjectedFault(decision)


def inject_failure(site: str, kind: type[InjectedFault] = InjectedFault
                   ) -> None:
    """Raise ``kind`` when ``site`` is scheduled (delay rules also raise —
    the site models a failure, the delay prices its detection)."""
    decision = decide(site)
    if decision is None:
        return
    if decision.delay_s:
        _DELAY_S.inc(decision.delay_s, site=site)
        time.sleep(decision.delay_s)
    raise kind(decision)


def inject_delay(site: str) -> float:
    """Sleep when ``site`` is scheduled; returns the seconds slept."""
    decision = decide(site)
    if decision is None or not decision.delay_s:
        return 0.0
    _DELAY_S.inc(decision.delay_s, site=site)
    time.sleep(decision.delay_s)
    return decision.delay_s


def corrupt_bytes(site: str, data: bytes) -> bytes:
    """Flip one byte of ``data`` when ``site`` is scheduled.

    The cache calls this on the raw bytes it just read, so an injected
    corruption exercises the *real* checksum/quarantine path end to end.
    Empty payloads pass through (nothing to corrupt).
    """
    if not data:
        return data
    decision = decide(site)
    if decision is None:
        return data
    position = decision.index % len(data)
    corrupted = bytearray(data)
    corrupted[position] ^= 0xFF
    return bytes(corrupted)
