"""Deterministic fault plans: a spec string compiled to a seeded schedule.

A :class:`FaultPlan` turns a compact spec such as ::

    "cache.corrupt:0.1,worker.kill:0.2,compute.slow:50ms"

into a *reproducible* schedule of injections.  Each comma-separated rule
names a fault **site** — a string the instrumented subsystems pass to
:func:`repro.faults.sites.decide` at the moment the fault could happen —
and an argument that is either an injection probability (``0.2``), a
delay (``50ms`` / ``1.5s`` / ``200us``), or both (``0.3:50ms`` = 30% of
occurrences are delayed 50 ms).

**Determinism.**  Whether occurrence *k* of site *s* injects is a pure
function of ``(seed, s, k)``: the plan hashes the triple (SHA-256, first
8 bytes mapped to ``[0, 1)``) and compares against the rule's rate.  No
RNG state is consumed, so the schedule does not depend on what other
sites drew, on thread interleaving, or on the platform — the same seed
always produces the same schedule, and a different seed an unrelated
one.  Per-site occurrence counters are the only mutable state, guarded
by a lock so concurrent threads each consume a distinct index.

This is the mechanism behind the chaos-determinism invariant the test
suite pins: faults perturb *when* work happens (retries, recomputes,
sleeps), never *what* it computes, so completed results are
byte-identical to the fault-free run.
"""

from __future__ import annotations

import hashlib
import struct
import threading
from dataclasses import dataclass

#: Duration suffixes a rule argument may carry, in seconds.
_UNITS = {"us": 1e-6, "ms": 1e-3, "s": 1.0}


def site_uniform(seed: int, site: str, index: int) -> float:
    """The deterministic uniform draw for occurrence ``index`` of ``site``.

    Pure: hashing ``(seed, site, index)`` rather than consuming RNG state
    makes every draw independent of every other site and occurrence.
    """
    digest = hashlib.sha256(f"{seed}|{site}|{index}".encode()).digest()
    return struct.unpack(">Q", digest[:8])[0] / 2.0 ** 64


def parse_duration(text: str) -> float:
    """``"50ms"`` -> ``0.05``; raises ``ValueError`` on junk."""
    for unit in ("us", "ms", "s"):  # "us"/"ms" before the bare "s"
        if text.endswith(unit):
            return float(text[: -len(unit)]) * _UNITS[unit]
    raise ValueError(f"bad duration {text!r} (use e.g. 50ms, 1.5s, 200us)")


def _format_duration(delay_s: float) -> str:
    if delay_s >= 1.0:
        return f"{delay_s:g}s"
    if delay_s >= 1e-3:
        return f"{delay_s * 1e3:g}ms"
    return f"{delay_s * 1e6:g}us"


@dataclass(frozen=True)
class FaultRule:
    """One site's injection rule.

    Attributes:
        site: fault-site name (``"worker.kill"``).
        rate: probability in ``[0, 1]`` that one occurrence injects.
        delay_s: seconds an injected occurrence sleeps (0 = fail only).
    """

    site: str
    rate: float
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if not self.site:
            raise ValueError("fault site must be non-empty")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"{self.site}: rate {self.rate} not in [0, 1]")
        if self.delay_s < 0:
            raise ValueError(f"{self.site}: negative delay")

    @property
    def fails(self) -> bool:
        """A rule with no delay *fails* the occurrence instead."""
        return self.delay_s == 0.0

    def spec(self) -> str:
        """Canonical rule text (round-trips through :meth:`parse_rule`)."""
        if self.delay_s and self.rate == 1.0:
            return f"{self.site}:{_format_duration(self.delay_s)}"
        if self.delay_s:
            return (f"{self.site}:{self.rate:g}:"
                    f"{_format_duration(self.delay_s)}")
        return f"{self.site}:{self.rate:g}"


def parse_rule(text: str) -> FaultRule:
    """One ``site:arg[:arg]`` clause of a fault spec."""
    parts = [p.strip() for p in text.strip().split(":")]
    if len(parts) not in (2, 3) or not all(parts):
        raise ValueError(
            f"bad fault rule {text!r}; expected site:rate, site:delay or "
            "site:rate:delay (e.g. worker.kill:0.2, compute.slow:50ms)")
    site = parts[0]
    if len(parts) == 3:
        return FaultRule(site, rate=float(parts[1]),
                         delay_s=parse_duration(parts[2]))
    arg = parts[1]
    if any(arg.endswith(u) for u in _UNITS):
        return FaultRule(site, rate=1.0, delay_s=parse_duration(arg))
    return FaultRule(site, rate=float(arg))


@dataclass(frozen=True)
class FaultDecision:
    """One scheduled injection: which occurrence of which rule fired."""

    site: str
    index: int
    delay_s: float

    @property
    def fails(self) -> bool:
        return self.delay_s == 0.0


class FaultPlan:
    """A seeded, reproducible schedule of fault injections.

    Thread-safe; the per-site occurrence counters are the only mutable
    state.  :meth:`decide` consumes one occurrence; :meth:`schedule`
    previews a site's injection pattern without consuming anything
    (property tests pin same-seed equality on it).
    """

    def __init__(self, rules: list[FaultRule] | tuple[FaultRule, ...],
                 seed: int = 0):
        by_site: dict[str, FaultRule] = {}
        for rule in rules:
            if rule.site in by_site:
                raise ValueError(f"duplicate fault site {rule.site!r}")
            by_site[rule.site] = rule
        self.rules = by_site
        self.seed = seed
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Compile a comma-separated spec string into a plan."""
        clauses = [c for c in (p.strip() for p in spec.split(",")) if c]
        if not clauses:
            raise ValueError("empty fault spec")
        return cls([parse_rule(c) for c in clauses], seed=seed)

    def spec(self) -> str:
        """Canonical spec text (``parse(plan.spec(), plan.seed)`` ==)."""
        return ",".join(self.rules[s].spec() for s in sorted(self.rules))

    def __repr__(self) -> str:
        return f"FaultPlan({self.spec()!r}, seed={self.seed})"

    # ------------------------------------------------------------- schedule
    def injects(self, site: str, index: int) -> bool:
        """Pure decision: does occurrence ``index`` of ``site`` inject?"""
        rule = self.rules.get(site)
        if rule is None or rule.rate == 0.0:
            return False
        if rule.rate >= 1.0:
            return True
        return site_uniform(self.seed, site, index) < rule.rate

    def schedule(self, site: str, occurrences: int) -> list[int]:
        """The indices in ``range(occurrences)`` that inject (stateless)."""
        return [k for k in range(occurrences) if self.injects(site, k)]

    def decide(self, site: str) -> FaultDecision | None:
        """Consume one occurrence of ``site``; the decision, or ``None``.

        Unknown sites consume nothing, so adding instrumentation to a
        subsystem never shifts the schedule of the sites a plan names.
        """
        rule = self.rules.get(site)
        if rule is None:
            return None
        with self._lock:
            index = self._counts.get(site, 0)
            self._counts[site] = index + 1
        if not self.injects(site, index):
            return None
        return FaultDecision(site=site, index=index, delay_s=rule.delay_s)

    def occurrences(self) -> dict[str, int]:
        """How many occurrences each site has consumed so far."""
        with self._lock:
            return dict(self._counts)

    def reset(self) -> None:
        """Rewind every occurrence counter (tests replay schedules)."""
        with self._lock:
            self._counts.clear()
