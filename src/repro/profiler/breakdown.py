"""Hierarchical runtime breakdowns — the paper's stacked bars.

Three aggregation levels mirror Figs. 3 and 4:

* :func:`component_breakdown` — Fig. 3: Transformer vs. output vs. embedding
  vs. optimizer (FWD+BWD of a layer counted together, updates separate).
* :func:`transformer_breakdown` — Fig. 4 second bar: attention vs. FC vs.
  DR+RC+LN inside the Transformer layers.
* :func:`region_breakdown` — Fig. 4 third/fourth bars and the Fig. 8/9
  sweeps: linear GEMMs, attention BGEMMs, scale+mask+dropout+softmax,
  FC GEMMs, GeLU, DR+RC+LN — each as a fraction of *overall* iteration
  time, matching the paper's labeling.

Every slice here is expressed as an attribute filter (component/region
codes) rather than a Python predicate, so on a columnar-backed
:class:`~repro.profiler.profiler.Profile` each one is a single masked
array reduction instead of an O(n) kernel scan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import spans
from repro.ops.base import Component, Region
from repro.profiler.profiler import Profile

#: Region groups of the Fig. 4 "Transformer" bar.
ATTENTION_REGIONS = (Region.ATTENTION_LINEAR, Region.ATTENTION_BGEMM,
                     Region.ATTENTION_SMDSM)
FC_REGIONS = (Region.FC_GEMM, Region.FC_GELU)


@dataclass(frozen=True)
class BreakdownEntry:
    """One slice of a stacked bar.

    Attributes:
        label: slice label.
        time_s: absolute time.
        fraction: share of the reference total (usually the iteration).
    """

    label: str
    time_s: float
    fraction: float


def _entries(named_times: list[tuple[str, float]],
             reference_total: float) -> list[BreakdownEntry]:
    if reference_total <= 0:
        raise ValueError("reference total must be positive")
    return [BreakdownEntry(label=name, time_s=t,
                           fraction=t / reference_total)
            for name, t in named_times]


def component_breakdown(profile: Profile) -> list[BreakdownEntry]:
    """Fig. 3: iteration time by top-level component."""
    total = profile.total_time
    named = [(component.value,
              profile.time_of(component=component))
             for component in (Component.TRANSFORMER, Component.OUTPUT,
                               Component.EMBEDDING, Component.OPTIMIZER,
                               Component.COMMUNICATION)]
    named = [(name, t) for name, t in named if t > 0]
    return _entries(named, total)


def transformer_breakdown(profile: Profile) -> list[BreakdownEntry]:
    """Fig. 4 "Transformer" bar: attention / FC / DR+RC+LN slices.

    Fractions are of the whole iteration (the paper's labels show
    contribution to overall training time).
    """
    total = profile.total_time
    named = [
        ("attention", profile.time_of(component=Component.TRANSFORMER,
                                      region=ATTENTION_REGIONS)),
        ("fc", profile.time_of(component=Component.TRANSFORMER,
                               region=FC_REGIONS)),
        ("dr_rc_ln", profile.time_of(component=Component.TRANSFORMER,
                                     region=Region.DR_RC_LN)),
    ]
    return _entries(named, total)


#: Region display order of the Fig. 4/8/9 bars.
REGION_ORDER = (
    Region.ATTENTION_LINEAR,
    Region.ATTENTION_BGEMM,
    Region.ATTENTION_SMDSM,
    Region.FC_GEMM,
    Region.FC_GELU,
    Region.DR_RC_LN,
)


def region_breakdown(profile: Profile) -> dict[Region, BreakdownEntry]:
    """Fine-grained Transformer-region shares of overall iteration time."""
    total = profile.total_time
    result = {}
    for region in REGION_ORDER:
        time_s = profile.time_of(component=Component.TRANSFORMER,
                                 region=region)
        result[region] = BreakdownEntry(label=region.value, time_s=time_s,
                                        fraction=time_s / total)
    return result


def gemm_fraction(profile: Profile) -> float:
    """Share of iteration time in (batched) GEMM kernels (Sec. 3.2.2)."""
    total = profile.total_time
    return profile.gemm_time() / total if total else 0.0


def optimizer_fraction(profile: Profile) -> float:
    """Share of iteration time in the optimizer update (Takeaways 1/2)."""
    total = profile.total_time
    time_s = profile.time_of(component=Component.OPTIMIZER)
    return time_s / total if total else 0.0


def memory_bound_fraction(profile: Profile) -> float:
    """Share of iteration time in non-GEMM (memory-bound) kernels
    (Takeaways 8/9)."""
    total = profile.total_time
    return profile.non_gemm_time() / total if total else 0.0


def summarize(profile: Profile) -> dict[str, float]:
    """Headline fractions used across experiments and tests."""
    with spans.span("breakdown.summarize", kernels=len(profile)):
        total = profile.total_time

        def share(component: Component) -> float:
            return (profile.time_of(component=component) / total
                    if total else 0.0)

        return {
            "total_time_s": total,
            "transformer": share(Component.TRANSFORMER),
            "output": share(Component.OUTPUT),
            "embedding": share(Component.EMBEDDING),
            "optimizer": optimizer_fraction(profile),
            "gemm": gemm_fraction(profile),
            "non_gemm": memory_bound_fraction(profile),
        }
