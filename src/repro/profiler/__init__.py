"""Simulated kernel profiler and breakdown aggregation."""

from repro.profiler.breakdown import (REGION_ORDER, BreakdownEntry,
                                      component_breakdown, gemm_fraction,
                                      memory_bound_fraction,
                                      optimizer_fraction, region_breakdown,
                                      summarize, transformer_breakdown)
from repro.profiler.export import (profile_summary, to_csv, to_json,
                                   write_csv, write_json)
from repro.profiler.profiler import KernelProfile, Profile, profile_trace
from repro.profiler.wallclock import (WallclockPhase, WallclockProfile,
                                      profile_step, profile_steps,
                                      summarize_wallclock)

__all__ = [
    "BreakdownEntry", "KernelProfile", "Profile", "REGION_ORDER",
    "component_breakdown", "gemm_fraction", "memory_bound_fraction",
    "optimizer_fraction", "profile_summary", "profile_trace",
    "region_breakdown", "summarize",
    "to_csv", "to_json", "transformer_breakdown", "write_csv",
    "write_json", "WallclockPhase", "WallclockProfile", "profile_step",
    "profile_steps", "summarize_wallclock",
]
