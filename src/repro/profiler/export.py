"""Profile export: rocProf-style CSV and structured JSON.

The paper's raw material is a profiler kernel table (Sec. 3.1.4).  These
exporters write our simulated equivalent so results can be inspected with
the same spreadsheet/pandas workflows people use on real rocprof output,
or re-loaded programmatically.
"""

from __future__ import annotations

import csv
import io
import json

from repro.profiler.profiler import Profile

#: Bumped when the export layout changes.  Version 2 stamps the JSON
#: payload with this field and writes un-attributed kernels as
#: ``layer=-1`` (the columnar engine's absent code) instead of an empty
#: CSV cell, so ``int(row["layer"])`` is always well-defined.
EXPORT_SCHEMA_VERSION = 2

#: CSV ``layer`` value of kernels outside any encoder layer.
NO_LAYER = -1

#: Column order of the CSV export (a superset of rocprof's essentials).
CSV_COLUMNS = ("index", "kernel_name", "op_class", "phase", "component",
               "region", "layer", "duration_us", "flops", "bytes_read",
               "bytes_written", "arithmetic_intensity",
               "achieved_gbps", "dtype", "gemm_shape")


def _rows(profile: Profile):
    for index, record in enumerate(profile.records):
        kernel = record.kernel
        yield {
            "index": index,
            "kernel_name": kernel.name,
            "op_class": kernel.op_class.value,
            "phase": kernel.phase.value,
            "component": kernel.component.value,
            "region": kernel.region.value,
            "layer": (NO_LAYER if kernel.layer_index is None
                      else kernel.layer_index),
            "duration_us": round(record.time_s * 1e6, 3),
            "flops": kernel.flops,
            "bytes_read": kernel.bytes_read,
            "bytes_written": kernel.bytes_written,
            "arithmetic_intensity": round(kernel.arithmetic_intensity, 4),
            "achieved_gbps": round(record.achieved_bandwidth / 1e9, 2),
            "dtype": kernel.dtype.label,
            "gemm_shape": kernel.gemm.label if kernel.gemm else "",
        }


def to_csv(profile: Profile) -> str:
    """Render the profile as a rocprof-like CSV string."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=CSV_COLUMNS)
    writer.writeheader()
    for row in _rows(profile):
        writer.writerow(row)
    return buffer.getvalue()


def write_csv(profile: Profile, path: str) -> None:
    """Write the CSV export to ``path``."""
    with open(path, "w", newline="") as handle:
        handle.write(to_csv(profile))


def profile_summary(profile: Profile) -> dict[str, object]:
    """Aggregate JSON-ready stats of one profile.

    The shape is shared by :func:`to_json` and the run-manifest telemetry
    (:mod:`repro.runner.manifest`), so a manifest entry and a full export
    of the same profile always agree.
    """
    return {
        "kernels": len(profile.records),
        "total_time_s": profile.total_time,
        "gemm_time_s": profile.gemm_time(),
        "flops": sum(r.kernel.flops for r in profile.records),
        "bytes": sum(r.kernel.bytes_total for r in profile.records),
    }


def to_json(profile: Profile) -> str:
    """Render the profile as JSON: device header, summary, kernel rows."""
    payload = {
        "schema": EXPORT_SCHEMA_VERSION,
        "device": {
            "name": profile.device.name,
            "mem_bandwidth_gbps": profile.device.mem_bandwidth_gbps,
            "compute_units": profile.device.compute_units,
        },
        "total_time_s": profile.total_time,
        "summary": profile_summary(profile),
        "kernels": list(_rows(profile)),
    }
    return json.dumps(payload, indent=2)


def write_json(profile: Profile, path: str) -> None:
    """Write the JSON export to ``path``."""
    with open(path, "w") as handle:
        handle.write(to_json(profile))
