"""Wall-clock profiler for the executable NumPy model.

The simulated profiler prices a kernel trace on a device model; this one
measures the *actual* NumPy execution of the real model — forward,
backward and optimizer phases — so the executable substrate can be
characterized the same way the paper characterizes the GPU run.  The op
recorder supplies per-phase matmul counts, giving a NumPy-GEMM share to
set against the paper's GEMM-share story (NumPy's eager elementwise ops
are far slower relative to BLAS matmuls than a GPU's, which is itself a
usable observation).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.data.batching import PreTrainingBatch
from repro.model.bert import BertForPreTraining
from repro.optim.base import Optimizer
from repro.tensor import recording


@dataclass(frozen=True)
class WallclockPhase:
    """One measured phase of a real training step.

    Attributes:
        name: ``"forward"`` / ``"backward"`` / ``"optimizer"``.
        seconds: wall-clock duration.
        matmuls: matmul ops the recorder observed during the phase.
        matmul_flops: their total FLOPs.
    """

    name: str
    seconds: float
    matmuls: int
    matmul_flops: int


@dataclass(frozen=True)
class WallclockProfile:
    """Measured breakdown of one executable training step.

    Attributes:
        phases: the three phases, in execution order.
        loss: the step's loss value.
    """

    phases: tuple[WallclockPhase, ...]
    loss: float

    @property
    def total_seconds(self) -> float:
        return sum(p.seconds for p in self.phases)

    def fraction(self, name: str) -> float:
        total = self.total_seconds
        phase = next((p for p in self.phases if p.name == name), None)
        if phase is None:
            raise KeyError(f"unknown phase {name!r}")
        return phase.seconds / total if total else 0.0

    @property
    def backward_to_forward(self) -> float:
        """Measured BWD/FWD time ratio (the paper's ~2x rule of thumb)."""
        fwd = next(p for p in self.phases if p.name == "forward")
        bwd = next(p for p in self.phases if p.name == "backward")
        return bwd.seconds / fwd.seconds if fwd.seconds else 0.0


def _matmul_stats(ops) -> tuple[int, int]:
    matmuls = recording.matmuls(ops)
    flops = 0
    for record in matmuls:
        m, n, k, batch = record.matmul_mnk()
        flops += 2 * m * n * k * batch
    return len(matmuls), flops


def profile_step(model: BertForPreTraining, optimizer: Optimizer,
                 batch: PreTrainingBatch) -> WallclockProfile:
    """Measure one real forward/backward/update step phase by phase."""
    optimizer.zero_grad()

    with recording.capture() as forward_ops:
        start = time.perf_counter()
        loss = model.loss(batch.token_ids, batch.mlm_labels,
                          batch.nsp_labels,
                          segment_ids=batch.segment_ids,
                          padding_mask=batch.padding_mask)
        forward_s = time.perf_counter() - start

    # The backward closures call np.matmul directly (not Tensor.matmul),
    # so the recorder sees nothing; count is reported as 0 by design.
    with recording.capture() as backward_ops:
        start = time.perf_counter()
        loss.backward()
        backward_s = time.perf_counter() - start

    start = time.perf_counter()
    optimizer.step()
    optimizer_s = time.perf_counter() - start

    fwd_count, fwd_flops = _matmul_stats(forward_ops)
    bwd_count, bwd_flops = _matmul_stats(backward_ops)
    return WallclockProfile(
        phases=(
            WallclockPhase("forward", forward_s, fwd_count, fwd_flops),
            WallclockPhase("backward", backward_s, bwd_count, bwd_flops),
            WallclockPhase("optimizer", optimizer_s, 0, 0),
        ),
        loss=float(loss.item()),
    )


def profile_steps(model: BertForPreTraining, optimizer: Optimizer,
                  batches, warmup: int = 1) -> list[WallclockProfile]:
    """Profile several steps, discarding ``warmup`` initial ones.

    Mirrors the paper's methodology of measuring a representative
    iteration after warm-up (Sec. 3.1.4).
    """
    profiles = [profile_step(model, optimizer, batch) for batch in batches]
    if warmup >= len(profiles):
        raise ValueError("warmup discards every measured step")
    return profiles[warmup:]


def summarize_wallclock(profiles: list[WallclockProfile]) -> dict[str, float]:
    """Median per-phase seconds and fractions across profiled steps."""
    if not profiles:
        raise ValueError("no profiles to summarize")
    result: dict[str, float] = {}
    for name in ("forward", "backward", "optimizer"):
        seconds = [next(p.seconds for p in profile.phases
                        if p.name == name) for profile in profiles]
        result[f"{name}_s"] = float(np.median(seconds))
    total = sum(result[f"{n}_s"] for n in ("forward", "backward",
                                           "optimizer"))
    for name in ("forward", "backward", "optimizer"):
        result[f"{name}_fraction"] = (result[f"{name}_s"] / total
                                      if total else 0.0)
    return result
