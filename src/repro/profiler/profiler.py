"""Simulated kernel profiler.

Plays a :class:`~repro.trace.builder.Trace` through a
:class:`~repro.hw.device.DeviceModel` and produces a per-kernel profile —
the rocProf-equivalent table (time, FLOPs, bytes, achieved bandwidth) that
every breakdown and figure in :mod:`repro.experiments` is computed from.

A profile, like a trace, is columnar-first: :func:`profile_trace` times the
whole trace through the vectorized :func:`repro.hw.timing.kernel_times`
engine and stores just ``(KernelTable, times array)``.  The per-record
object view (``profile.records``) is materialized lazily; until someone
touches it, ``time_of`` / ``gemm_time`` / ``total_time`` are masked array
reductions.  Once the record list exists it becomes the authoritative,
mutable side and the aggregation methods fall back to scanning it, so code
that appends or deletes records keeps its existing semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.hw.device import DeviceModel
from repro.hw.timing import kernel_times
from repro.obs import spans
from repro.ops.base import Component, Kernel, OpClass, Phase, Region
from repro.trace.kernel_table import KernelTable


@dataclass(frozen=True)
class KernelProfile:
    """One kernel's profiled execution.

    Attributes:
        kernel: the kernel record.
        time_s: modeled execution time in seconds.
    """

    kernel: Kernel
    time_s: float

    @property
    def achieved_bandwidth(self) -> float:
        """Bytes per second actually sustained."""
        return self.kernel.bytes_total / self.time_s if self.time_s else 0.0

    @property
    def achieved_flops(self) -> float:
        """FLOP/s actually sustained."""
        return self.kernel.flops / self.time_s if self.time_s else 0.0


class Profile:
    """Profiled execution of a whole iteration trace.

    Attributes:
        device: device the trace was timed on.
        records: per-kernel profiles, in launch order (lazily materialized
            when the profile is columnar-backed).
    """

    def __init__(self, device: DeviceModel,
                 records: list[KernelProfile] | None = None, *,
                 table: KernelTable | None = None,
                 times: np.ndarray | None = None):
        if records is None and (table is None or times is None):
            raise ValueError("Profile needs records or a (table, times) pair")
        self.device = device
        self._records: list[KernelProfile] | None = (
            list(records) if records is not None else None)
        self._table = table
        if times is not None:
            times = np.asarray(times, dtype=np.float64)
            times.flags.writeable = False  # shared across fork()ed views
        self._times = times
        # (record count, total) pair backing the cached total_time; compared
        # against len() on access so appends invalidate it.
        self._total_cache: tuple[int, float] | None = None

    # -------------------------------------------------------- representations
    @property
    def records(self) -> list[KernelProfile]:
        """The record list, materialized from the columns on first access."""
        if self._records is None:
            kernels = self._table.to_kernels()
            self._records = [KernelProfile(kernel=k, time_s=float(t))
                             for k, t in zip(kernels, self._times)]
        return self._records

    def _columnar(self) -> KernelTable | None:
        """The table, only while it is authoritative (records untouched)."""
        return self._table if self._records is None else None

    @property
    def times(self) -> np.ndarray:
        """Per-kernel times as an array (a copy when record-backed)."""
        if self._columnar() is not None:
            return self._times
        return np.array([r.time_s for r in self._records], dtype=np.float64)

    def fork(self) -> "Profile":
        """An independent view for another caller.

        Columnar profiles share the immutable (table, times) backing;
        record-backed profiles copy the container (records are frozen).
        """
        if self._records is None:
            return Profile(self.device, table=self._table, times=self._times)
        return Profile(self.device, records=self._records)

    def __iter__(self) -> Iterator[KernelProfile]:
        return iter(self.records)

    def __len__(self) -> int:
        if self._records is None:
            return len(self._times)
        return len(self._records)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Profile):
            return NotImplemented
        return self.device == other.device and self.records == other.records

    def __repr__(self) -> str:
        return f"Profile(device={self.device.name!r}, records={len(self)})"

    # --------------------------------------------------------------- pickling
    def __getstate__(self) -> dict:
        # Serialize the compact columnar form (rebuilt from the records if
        # they were materialized/mutated) so cache entries stay small and
        # loads stay lazy.
        if self._records is not None:
            table = KernelTable.from_kernels(r.kernel for r in self._records)
            times = np.array([r.time_s for r in self._records],
                             dtype=np.float64)
        else:
            table, times = self._table, self._times
        return {"device": self.device, "table": table, "times": times}

    def __setstate__(self, state: dict) -> None:
        self.device = state["device"]
        self._records = None
        self._table = state["table"]
        times = state["times"]
        times.flags.writeable = False
        self._times = times
        self._total_cache = None

    # ------------------------------------------------------------ aggregates
    @property
    def total_time(self) -> float:
        """Serialized iteration time in seconds.

        Cached: ``fraction_where``/``summarize`` loops call this per
        kernel group, which made them O(n^2) over large traces.  Records
        are append-only after construction, so the cache keys on the
        record count and recomputes whenever it changes.
        """
        if self._total_cache is None or self._total_cache[0] != len(self):
            if self._columnar() is not None:
                total = float(np.sum(self._times))
            else:
                total = sum(r.time_s for r in self._records)
            self._total_cache = (len(self), total)
        return self._total_cache[1]

    # ------------------------------------------------------------- selection
    def time_where(self, predicate: Callable[[Kernel], bool]) -> float:
        """Total time of kernels matching ``predicate``."""
        return sum(r.time_s for r in self.records if predicate(r.kernel))

    def time_of(self, *, phase: Phase | tuple[Phase, ...] | None = None,
                component: Component | tuple[Component, ...] | None = None,
                region: Region | tuple[Region, ...] | None = None,
                op_class: OpClass | tuple[OpClass, ...] | None = None
                ) -> float:
        """Total time of kernels matching the given attribute filters.

        Each filter accepts a single enum member or a tuple of members
        (matched as a set).  On a columnar-backed profile this is one
        masked array reduction.
        """
        table = self._columnar()
        if table is not None:
            mask = table.mask(phase=phase, component=component,
                              region=region, op_class=op_class)
            return float(self._times[mask].sum())

        def matches(value, attribute) -> bool:
            if value is None:
                return True
            if isinstance(value, tuple):
                return attribute in value
            return attribute is value

        return sum(r.time_s for r in self._records
                   if matches(phase, r.kernel.phase)
                   and matches(component, r.kernel.component)
                   and matches(region, r.kernel.region)
                   and matches(op_class, r.kernel.op_class))

    def fraction_where(self, predicate: Callable[[Kernel], bool]) -> float:
        """Fraction of total time in kernels matching ``predicate``."""
        total = self.total_time
        return self.time_where(predicate) / total if total else 0.0

    def gemm_time(self) -> float:
        """Time in (batched) GEMM kernels."""
        table = self._columnar()
        if table is not None:
            return float(self._times[table.is_gemm].sum())
        return self.time_where(lambda k: k.op_class.is_gemm)

    def non_gemm_time(self) -> float:
        """Time in non-GEMM (memory-bound) kernels."""
        table = self._columnar()
        if table is not None:
            return float(self._times[~table.is_gemm].sum())
        return self.time_where(lambda k: not k.op_class.is_gemm)

    def records_where(self, predicate: Callable[[Kernel], bool]
                      ) -> list[KernelProfile]:
        """Profiled records matching ``predicate``."""
        return [r for r in self.records if predicate(r.kernel)]


def profile_trace(trace_kernels: "Iterable[Kernel] | KernelTable",
                  device: DeviceModel) -> Profile:
    """Time every kernel of a trace on ``device``.

    Accepts a :class:`~repro.trace.builder.Trace`, a
    :class:`KernelTable`, or any kernel iterable; timing runs through the
    single vectorized entry point :func:`repro.hw.timing.kernel_times`.
    """
    table = KernelTable.coerce(trace_kernels)
    with spans.span("profile.trace", kernels=len(table),
                    device=device.name):
        return Profile(device=device, table=table,
                       times=kernel_times(table, device))
