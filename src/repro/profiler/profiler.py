"""Simulated kernel profiler.

Plays a :class:`~repro.trace.builder.Trace` through a
:class:`~repro.hw.device.DeviceModel` and produces a per-kernel profile —
the rocProf-equivalent table (time, FLOPs, bytes, achieved bandwidth) that
every breakdown and figure in :mod:`repro.experiments` is computed from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.hw.device import DeviceModel
from repro.hw.timing import kernel_time
from repro.ops.base import Component, Kernel, OpClass, Phase, Region


@dataclass(frozen=True)
class KernelProfile:
    """One kernel's profiled execution.

    Attributes:
        kernel: the kernel record.
        time_s: modeled execution time in seconds.
    """

    kernel: Kernel
    time_s: float

    @property
    def achieved_bandwidth(self) -> float:
        """Bytes per second actually sustained."""
        return self.kernel.bytes_total / self.time_s if self.time_s else 0.0

    @property
    def achieved_flops(self) -> float:
        """FLOP/s actually sustained."""
        return self.kernel.flops / self.time_s if self.time_s else 0.0


@dataclass
class Profile:
    """Profiled execution of a whole iteration trace.

    Attributes:
        device: device the trace was timed on.
        records: per-kernel profiles, in launch order.
    """

    device: DeviceModel
    records: list[KernelProfile]
    # (record count, total) pair backing the cached total_time; compared
    # against len(records) on access so appends invalidate it.  Excluded
    # from equality/repr — it is derived state, not identity.
    _total_cache: tuple[int, float] | None = field(
        default=None, repr=False, compare=False)

    def __iter__(self) -> Iterator[KernelProfile]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def total_time(self) -> float:
        """Serialized iteration time in seconds.

        Cached: ``fraction_where``/``summarize`` loops call this per
        kernel group, which made them O(n^2) over large traces.  Records
        are append-only after construction, so the cache keys on the
        record count and recomputes whenever it changes.
        """
        if self._total_cache is None or self._total_cache[0] != len(self.records):
            self._total_cache = (len(self.records),
                                 sum(r.time_s for r in self.records))
        return self._total_cache[1]

    # ------------------------------------------------------------- selection
    def time_where(self, predicate: Callable[[Kernel], bool]) -> float:
        """Total time of kernels matching ``predicate``."""
        return sum(r.time_s for r in self.records if predicate(r.kernel))

    def time_of(self, *, phase: Phase | None = None,
                component: Component | None = None,
                region: Region | None = None,
                op_class: OpClass | None = None) -> float:
        """Total time of kernels matching the given attribute filters."""
        def match(kernel: Kernel) -> bool:
            if phase is not None and kernel.phase is not phase:
                return False
            if component is not None and kernel.component is not component:
                return False
            if region is not None and kernel.region is not region:
                return False
            if op_class is not None and kernel.op_class is not op_class:
                return False
            return True
        return self.time_where(match)

    def fraction_where(self, predicate: Callable[[Kernel], bool]) -> float:
        """Fraction of total time in kernels matching ``predicate``."""
        total = self.total_time
        return self.time_where(predicate) / total if total else 0.0

    def gemm_time(self) -> float:
        """Time in (batched) GEMM kernels."""
        return self.time_where(lambda k: k.op_class.is_gemm)

    def records_where(self, predicate: Callable[[Kernel], bool]
                      ) -> list[KernelProfile]:
        """Profiled records matching ``predicate``."""
        return [r for r in self.records if predicate(r.kernel)]


def profile_trace(trace_kernels: Iterable[Kernel],
                  device: DeviceModel) -> Profile:
    """Time every kernel of a trace on ``device``."""
    records = [KernelProfile(kernel=k, time_s=kernel_time(k, device))
               for k in trace_kernels]
    return Profile(device=device, records=records)
