"""Command-line interface: regenerate any paper experiment.

Usage::

    python -m repro list
    python -m repro run fig3
    python -m repro run all --jobs 4
    python -m repro report
    python -m repro spans
    python -m repro stats
    python -m repro stats --prom
    python -m repro serve --port 8321 --event-log runs/flight.jsonl
    python -m repro flight --log runs/flight.jsonl
    python -m repro export fig8 /tmp/fig8.csv
    python -m repro export --format perfetto fig3.ph1-b32-fp32 /tmp/t.json
    python -m repro export --format perfetto --passes fuse_elementwise \
        fig3.ph1-b32-fp32 /tmp/fused.json
    python -m repro passes
    python -m repro cache info
    python -m repro info

Every ``run`` writes a JSON manifest under ``runs/`` recording
per-experiment wall-clock, cache hits/misses, kernel counts and
paper-band verdicts; ``repro report`` summarizes the most recent one.
"""

from __future__ import annotations

import argparse
import sys


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Demystifying BERT: System Design "
                    "Implications' (IISWC 2022)")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list available experiments")

    run = commands.add_parser("run", help="run an experiment (or 'all')")
    run.add_argument("experiment", help="experiment id, e.g. fig3, or 'all'")
    run.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                     help="worker processes for batch runs (default 1)")
    run.add_argument("--fresh", action="store_true",
                     help="recompute even if a cached result exists")
    run.add_argument("--no-manifest", action="store_true",
                     help="skip writing the runs/<timestamp>.json manifest")
    run.add_argument("--resume", action="store_true",
                     help="re-execute only the experiments the most "
                          "recent manifest records as failed or missing")
    run.add_argument("--faults", default=None, metavar="SPEC",
                     help="seeded chaos plan injected at the runner's "
                          "fault sites, e.g. "
                          "'worker.kill:0.2,cache.corrupt:0.1,"
                          "compute.slow:50ms' (see docs/robustness.md)")
    run.add_argument("--fault-seed", type=int, default=0, metavar="N",
                     help="fault-plan seed (default 0); same seed, same "
                          "injection schedule")

    export = commands.add_parser(
        "export",
        help="write an experiment's rows as CSV, or an operating "
             "point's kernel timeline as Perfetto/Chrome-trace JSON")
    export.add_argument("experiment",
                        help="experiment id (csv), operating-point id such "
                             "as fig3.ph1-b32-fp32, or fig11 (perfetto)")
    export.add_argument("path", help="destination file")
    export.add_argument("--format", choices=("csv", "perfetto"),
                        default="csv", dest="fmt",
                        help="output format (default csv)")
    export.add_argument("--passes", default=None, metavar="SPEC",
                        help="trace-rewrite pipeline applied before a "
                             "perfetto point export, e.g. "
                             "'fuse_elementwise,checkpointing:4' "
                             "(see `repro passes`)")

    trace = commands.add_parser(
        "trace",
        help="build one operating point's kernel trace and summarize it")
    trace.add_argument("point",
                       help="operating-point id, e.g. fig3.ph1-b32-fp32 or "
                            "tiny.ph1-b2-fp32")
    trace.add_argument("--from-graph", action="store_true",
                       dest="from_graph",
                       help="build via the lazy tensor graph and scheduler "
                            "(validated and cross-checked bit-exact "
                            "against the layer-templated builder) instead "
                            "of the builder directly")
    trace.add_argument("--rewrites", default=None, metavar="NAME,NAME",
                       help="schedule rewrites applied to the graph before "
                            "lowering (graph path only), e.g. "
                            "fuse_elementwise")

    grid = commands.add_parser(
        "grid",
        help="sweep a (batch, seq-len, precision) grid through the "
             "batched grid engine")
    grid.add_argument("--model", default="bert-large",
                      choices=("bert-tiny", "bert-base", "bert-large",
                               "c1", "c2", "c3"),
                      help="architecture to sweep (default bert-large)")
    grid.add_argument("--batch-sizes", default="4,16,32", metavar="B,B,...",
                      help="comma-separated batch sizes (default 4,16,32)")
    grid.add_argument("--seq-lens", default="128,512", metavar="N,N,...",
                      help="comma-separated sequence lengths "
                           "(default 128,512)")
    grid.add_argument("--precisions", default="fp32", metavar="P,P,...",
                      help="comma-separated from fp32,mixed (default fp32)")
    grid.add_argument("--csv", default=None, metavar="PATH",
                      help="also write the rows as CSV")

    serve = commands.add_parser(
        "serve",
        help="run the async profiling server (HTTP JSON over the engine)")
    serve.add_argument("--port", type=int, default=8321,
                       help="TCP port (default 8321; 0 picks a free port)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--workers", type=int, default=4, metavar="N",
                       help="worker threads for engine computations "
                            "(default 4)")
    serve.add_argument("--queue-limit", type=int, default=32, metavar="N",
                       help="max queued+running computations before "
                            "shedding with 503 (default 32)")
    serve.add_argument("--hot-cache-mb", type=int, default=64, metavar="MB",
                       help="in-process response cache budget (default 64)")
    serve.add_argument("--flight-slots", type=int, default=256, metavar="N",
                       help="completed requests kept in the flight "
                            "recorder ring (default 256)")
    serve.add_argument("--event-log", default=None, metavar="PATH",
                       help="append every completed request as one JSON "
                            "line to PATH (inspect with `repro flight`)")
    serve.add_argument("--faults", default=None, metavar="SPEC",
                       help="seeded chaos plan injected at the serve "
                            "fault sites, e.g. 'serve.fail:0.2,"
                            "serve.slow:10ms'")
    serve.add_argument("--fault-seed", type=int, default=0, metavar="N",
                       help="fault-plan seed (default 0)")

    flight = commands.add_parser(
        "flight",
        help="inspect a flight-recorder event log written by "
             "`repro serve --event-log`")
    flight.add_argument("--log", required=True, metavar="PATH",
                        help="JSONL event log to read")
    flight.add_argument("--last", type=int, default=20, metavar="N",
                        help="show the last N requests (default 20; "
                             "0 shows all)")
    flight.add_argument("--trace", default=None, metavar="TRACE_ID",
                        help="print one request's full span tree instead "
                             "of the listing")

    commands.add_parser(
        "passes", help="list the registered trace-rewrite passes")

    report = commands.add_parser(
        "report", help="summarize the most recent run manifest")
    report.add_argument("--run", metavar="PATH", default=None,
                        help="manifest file (default: latest under runs/)")

    spans = commands.add_parser(
        "spans", help="span timing summary of a run manifest")
    spans.add_argument("--run", metavar="PATH", default=None,
                       help="manifest file (default: latest under runs/)")

    stats = commands.add_parser(
        "stats", help="metrics (counters/hit rates) of a run manifest")
    stats.add_argument("--run", metavar="PATH", default=None,
                       help="manifest file (default: latest under runs/)")
    stats.add_argument("--prom", action="store_true",
                       help="render the manifest's metrics in Prometheus "
                            "text exposition format instead of a table")

    cache = commands.add_parser(
        "cache", help="inspect or clear the result cache")
    cache.add_argument("action", choices=("info", "clear"),
                       help="'info' prints location/size, 'clear' empties it")

    commands.add_parser("info", help="model/device summary")
    return parser


def _cmd_list() -> int:
    from repro.experiments.registry import REGISTRY

    if not REGISTRY:
        print("no experiments registered")
        return 0
    width = max(len(eid) for eid in REGISTRY)
    for eid, experiment in REGISTRY.items():
        print(f"{eid.ljust(width)}  {experiment.description}")
    return 0


def _activate_faults(spec: str | None, seed: int) -> int:
    """Install (and export to the environment) a chaos plan; 0 on ok."""
    if spec is None:
        return 0
    from repro import faults

    try:
        plan = faults.FaultPlan.parse(spec, seed=seed)
    except ValueError as error:
        print(f"bad --faults spec: {error}", file=sys.stderr)
        return 2
    faults.export_to_env(plan)  # --jobs N workers inherit the plan
    faults.activate(plan)
    print(f"fault plan active: {plan.spec()} (seed {plan.seed})",
          file=sys.stderr)
    return 0


def _cmd_run(experiment_id: str, jobs: int, write_manifest: bool,
             fresh: bool, resume: bool = False,
             faults_spec: str | None = None, fault_seed: int = 0) -> int:
    from repro.experiments.registry import REGISTRY
    from repro.runner import cache as result_cache
    from repro.runner.executor import run_experiments
    from repro.runner.manifest import (build_manifest, latest_manifest_path,
                                       load_manifest, resume_ids)
    from repro.runner.manifest import write_manifest as write_manifest_file

    if _activate_faults(faults_spec, fault_seed):
        return 2

    if experiment_id == "all":
        ids = list(REGISTRY)
    elif experiment_id in REGISTRY:
        ids = [experiment_id]
    else:
        print(f"unknown experiment {experiment_id!r}", file=sys.stderr)
        print(f"valid ids: {', '.join(sorted(REGISTRY))} (or 'all')",
              file=sys.stderr)
        return 2

    if resume:
        previous = latest_manifest_path()
        if previous is None:
            print("--resume: no previous manifest; running everything",
                  file=sys.stderr)
        else:
            remaining = resume_ids(load_manifest(previous), ids)
            skipped = len(ids) - len(remaining)
            print(f"--resume from {previous}: {skipped} already complete, "
                  f"{len(remaining)} to run", file=sys.stderr)
            if not remaining:
                print("nothing to resume; all requested experiments "
                      "completed")
                return 0
            ids = remaining

    results = run_experiments(ids, jobs=jobs, use_result_cache=not fresh)

    # stdout carries only deterministic content (experiment reports and
    # pass/fail identities), so two invocations of the same tree diff
    # clean; timings and the manifest path go to stderr.
    for result in results:
        title = f"{result.experiment_id}: " \
                f"{REGISTRY[result.experiment_id].description}"
        print(f"\n{title}\n{'-' * len(title)}")
        if result.ok:
            print(result.output)
        else:
            print("FAILED")
            print(f"{result.experiment_id} failed after "
                  f"{result.duration_s:.2f}s:\n{result.error}",
                  file=sys.stderr)

    failures = [r.experiment_id for r in results if not r.ok]
    if len(results) > 1 or failures:
        total = sum(r.duration_s for r in results)
        print(f"\n{len(results) - len(failures)}/{len(results)} experiments "
              f"succeeded"
              + (f"; FAILED: {', '.join(failures)}" if failures else ""))
        print(f"total wall-clock: {total:.2f}s", file=sys.stderr)

    if write_manifest:
        active_cache = result_cache.get_cache()
        manifest = build_manifest(
            results, jobs=jobs, command=f"run {experiment_id}",
            cache_stats=active_cache.stats,
            cache_dir=str(active_cache.root))
        path = write_manifest_file(manifest)
        print(f"manifest: {path}", file=sys.stderr)

    return 1 if failures else 0


def _cmd_export_perfetto(target: str, path: str,
                         passes_spec: str | None = None) -> int:
    from repro.experiments.points import POINT_REGISTRY, resolve_point
    from repro.obs.timeline_export import (device_timelines_to_chrome_trace,
                                           profile_to_chrome_trace,
                                           validate_chrome_trace,
                                           write_chrome_trace)

    if target == "fig11":
        if passes_spec:
            print("--passes applies to operating-point exports, not fig11",
                  file=sys.stderr)
            return 2
        from repro.experiments import fig11
        payload = device_timelines_to_chrome_trace(fig11.run())
    elif target in POINT_REGISTRY:
        from repro.experiments.common import run_point
        from repro.trace.passes import build_pipeline
        model, training = resolve_point(target)
        manager = None
        label = f"{model.name} {training.label}"
        if passes_spec:
            try:
                manager = build_pipeline(passes_spec)
            except (KeyError, ValueError) as error:
                print(str(error.args[0] if error.args else error),
                      file=sys.stderr)
                return 2
            label += f" [{manager.signature}]"
        _, profile = run_point(model, training, passes=manager)
        payload = profile_to_chrome_trace(profile, label=label)
    else:
        print(f"unknown perfetto export target {target!r}; valid targets: "
              f"{', '.join(sorted(POINT_REGISTRY))}, fig11",
              file=sys.stderr)
        return 2
    problems = validate_chrome_trace(payload)
    if problems:  # defensive: exporters always emit valid traces
        print("invalid trace: " + "; ".join(problems), file=sys.stderr)
        return 1
    write_chrome_trace(payload, path)
    events = len(payload["traceEvents"])
    print(f"wrote {path} ({events} events; open in ui.perfetto.dev)")
    return 0


def _load_manifest_or_complain(run_path: str | None):
    from pathlib import Path

    from repro.runner.manifest import (latest_manifest_path, load_manifest,
                                       runs_dir)

    path = Path(run_path) if run_path else latest_manifest_path()
    if path is None or not path.is_file():
        where = run_path if run_path else f"{runs_dir()}/"
        print(f"no run manifest found at {where}; "
              "run `repro run all` first", file=sys.stderr)
        return None
    return load_manifest(path)


def _cmd_report(run_path: str | None) -> int:
    from repro.runner.manifest import render_manifest

    manifest = _load_manifest_or_complain(run_path)
    if manifest is None:
        return 1
    print(render_manifest(manifest))
    return 0


def _cmd_spans(run_path: str | None) -> int:
    from repro.runner.manifest import render_spans

    manifest = _load_manifest_or_complain(run_path)
    if manifest is None:
        return 1
    print(render_spans(manifest))
    return 0


def _cmd_stats(run_path: str | None, prom: bool = False) -> int:
    from repro.runner.manifest import render_stats

    manifest = _load_manifest_or_complain(run_path)
    if manifest is None:
        return 1
    if prom:
        from repro.obs.prometheus import render_prometheus
        snapshot = (manifest.get("observability") or {}).get("metrics") or {}
        if not snapshot:
            print("no metrics recorded in this manifest", file=sys.stderr)
            return 1
        print(render_prometheus(snapshot), end="")
        return 0
    print(render_stats(manifest))
    return 0


def _cmd_flight(log_path: str, last: int, trace_id: str | None) -> int:
    from repro.obs.flight import (read_event_log, render_flight_table,
                                  render_trace_tree)

    try:
        records = read_event_log(log_path)
    except OSError as error:
        print(f"cannot read event log: {error}", file=sys.stderr)
        return 1
    if trace_id is not None:
        matches = [r for r in records if r.get("trace_id") == trace_id]
        if not matches:
            print(f"trace {trace_id!r} not in {log_path}", file=sys.stderr)
            return 1
        print(render_trace_tree(matches[-1]))
        return 0
    print(render_flight_table(records, last=last))
    return 0


def _cmd_cache(action: str) -> int:
    from repro.runner.cache import get_cache

    cache = get_cache()
    if action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.root}")
        return 0
    entries = cache.entries()
    print(f"cache directory: {cache.root}")
    print(f"entries: {len(entries)}")
    print(f"size: {cache.size_bytes() / 1e6:.2f} MB")
    print("clear with `repro cache clear` (or delete the directory)")
    return 0


def _cmd_trace(point: str, *, from_graph: bool = False,
               rewrites: str | None = None) -> int:
    from repro.experiments.points import resolve_point
    from repro.trace.bert_trace import build_iteration_trace

    try:
        model, training = resolve_point(point)
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2

    names = tuple(n for n in (rewrites or "").split(",") if n)
    if names and not from_graph:
        print("--rewrites requires --from-graph", file=sys.stderr)
        return 2

    if from_graph:
        from repro.tensor.schedule import ScheduleError
        from repro.trace.builder import Trace
        from repro.trace.lowerer import SCHEDULE_REWRITES, bert_iteration_graph
        unknown = [n for n in names if n not in SCHEDULE_REWRITES]
        if unknown:
            print(f"unknown rewrites {unknown}; valid: "
                  f"{', '.join(sorted(SCHEDULE_REWRITES))}", file=sys.stderr)
            return 2
        try:
            graph = bert_iteration_graph(model, training, rewrites=names)
            graph.validate()
        except ScheduleError as error:
            print(f"invalid schedule: {error}", file=sys.stderr)
            return 1
        trace = Trace.from_table(model, training, graph.lower())
        source = f"lazy graph ({len(graph.schedule)} schedule items)"
        if not names:
            match = (trace.table.to_kernels()
                     == build_iteration_trace(model, training)
                     .table.to_kernels())
            source += (", bit-identical to builder" if match
                       else ", DIVERGES from builder")
            if not match:
                print(f"{source}", file=sys.stderr)
                return 1
    else:
        trace = build_iteration_trace(model, training)
        source = "layer-templated builder"

    gemms = len(trace.gemms())
    print(f"{point}: {model.name} {training.label}")
    print(f"source: {source}")
    print(f"kernels: {len(trace)} ({gemms} gemms)")
    print(f"total flops: {trace.total_flops:,}")
    print(f"total bytes: {trace.total_bytes:,}")
    return 0


def _cmd_grid(model_name: str, batch_sizes: str, seq_lens: str,
              precisions: str, csv_path: str | None) -> int:
    from repro.config import (BERT_BASE, BERT_LARGE, BERT_TINY, C1, C2, C3,
                              Precision)
    from repro.experiments.sweeps import cross_product, grid_sweep, rows_to_csv
    from repro.report.tables import format_percent, format_table

    models = {"bert-tiny": BERT_TINY, "bert-base": BERT_BASE,
              "bert-large": BERT_LARGE, "c1": C1, "c2": C2, "c3": C3}
    precision_names = {"fp32": Precision.FP32, "mixed": Precision.MIXED}
    try:
        batches = [int(b) for b in batch_sizes.split(",") if b]
        lengths = [int(n) for n in seq_lens.split(",") if n]
        precs = [precision_names[p.strip().lower()]
                 for p in precisions.split(",") if p]
    except (KeyError, ValueError):
        print("bad grid axis; batch sizes and seq lens are integers, "
              "precisions come from fp32,mixed", file=sys.stderr)
        return 2
    if not (batches and lengths and precs):
        print("empty grid axis", file=sys.stderr)
        return 2

    rows = grid_sweep(models[model_name],
                      cross_product(batches, lengths, precs))
    table = []
    for row in rows:
        if "error" in row:
            table.append((row["label"], row["tokens"], "FAILED",
                          row["error"], "", ""))
            continue
        table.append((row["label"], row["tokens"],
                      f"{row['total_time_s'] * 1e3:.2f} ms",
                      format_percent(row["transformer"]),
                      format_percent(row["optimizer"]),
                      format_percent(row["output"])))
    print(f"{model_name}: {len(rows)} points, one stamped grid")
    print(format_table(("point", "tokens", "iteration", "transformer",
                        "optimizer", "output"), table))
    if csv_path:
        rendered = rows_to_csv(rows)
        with open(csv_path, "w", newline="") as handle:
            handle.write(rendered)
        print(f"wrote {csv_path}")
    failures = sum(1 for row in rows if "error" in row)
    return 1 if failures else 0


def _cmd_serve(host: str, port: int, *, workers: int, queue_limit: int,
               hot_cache_mb: int, flight_slots: int,
               event_log: str | None, faults_spec: str | None = None,
               fault_seed: int = 0) -> int:
    from repro.serve import App, HotCache, run_server

    if workers <= 0 or queue_limit <= 0 or hot_cache_mb <= 0 \
            or flight_slots <= 0:
        print("--workers, --queue-limit, --hot-cache-mb and --flight-slots "
              "must be positive", file=sys.stderr)
        return 2
    if _activate_faults(faults_spec, fault_seed):
        return 2
    app = App(workers=workers, queue_limit=queue_limit,
              hot_cache=HotCache(hot_cache_mb * 1024 * 1024),
              flight_capacity=flight_slots, event_log=event_log)
    run_server(app, host=host, port=port)
    return 0


def _cmd_passes() -> int:
    from repro.trace.passes import available_passes

    registry = available_passes()
    width = max(len(name) for name in registry)
    for name in sorted(registry):
        print(f"{name.ljust(width)}  {registry[name][0]}")
    print("\ncompose with `repro export --format perfetto "
          "--passes name[:arg],name ...`")
    return 0


def _cmd_info() -> int:
    from repro.config import BERT_BASE, BERT_LARGE, C3
    from repro.hw import mi100
    from repro.ops.base import DType

    device = mi100()
    print("models:")
    for config in (BERT_BASE, BERT_LARGE, C3):
        print(f"  {config.name:12s} N={config.num_layers:3d} "
              f"d={config.d_model:5d} h={config.num_heads:3d} "
              f"params={config.total_parameters() / 1e6:7.1f}M")
    print(f"device: {device.name}")
    print(f"  FP32 GEMM effective peak: "
          f"{device.gemm_engine(DType.FP32).effective_peak / 1e12:.1f} "
          "TFLOP/s")
    print(f"  FP16 GEMM effective peak: "
          f"{device.gemm_engine(DType.FP16).effective_peak / 1e12:.1f} "
          "TFLOP/s")
    print(f"  memory bandwidth: {device.mem_bandwidth_gbps:.0f} GB/s")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    try:
        return _dispatch(_build_parser().parse_args(argv))
    except BrokenPipeError:
        # Downstream closed the pipe (`repro report | head`): exit
        # quietly like any well-behaved CLI.  Point stdout at devnull so
        # interpreter-shutdown flushing doesn't raise again.
        import os
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.experiment, jobs=args.jobs,
                        write_manifest=not args.no_manifest,
                        fresh=args.fresh, resume=args.resume,
                        faults_spec=args.faults,
                        fault_seed=args.fault_seed)
    if args.command == "export":
        if args.fmt == "perfetto":
            return _cmd_export_perfetto(args.experiment, args.path,
                                        args.passes)
        if args.passes:
            print("--passes requires --format perfetto", file=sys.stderr)
            return 2
        from repro.experiments.sweeps import export_experiment_csv
        try:
            export_experiment_csv(args.experiment, args.path)
        except (KeyError, TypeError) as error:
            print(str(error), file=sys.stderr)
            return 2
        print(f"wrote {args.path}")
        return 0
    if args.command == "report":
        return _cmd_report(args.run)
    if args.command == "spans":
        return _cmd_spans(args.run)
    if args.command == "stats":
        return _cmd_stats(args.run, prom=args.prom)
    if args.command == "flight":
        return _cmd_flight(args.log, args.last, args.trace)
    if args.command == "cache":
        return _cmd_cache(args.action)
    if args.command == "trace":
        return _cmd_trace(args.point, from_graph=args.from_graph,
                          rewrites=args.rewrites)
    if args.command == "grid":
        return _cmd_grid(args.model, args.batch_sizes, args.seq_lens,
                         args.precisions, args.csv)
    if args.command == "serve":
        return _cmd_serve(args.host, args.port, workers=args.workers,
                          queue_limit=args.queue_limit,
                          hot_cache_mb=args.hot_cache_mb,
                          flight_slots=args.flight_slots,
                          event_log=args.event_log,
                          faults_spec=args.faults,
                          fault_seed=args.fault_seed)
    if args.command == "passes":
        return _cmd_passes()
    if args.command == "info":
        return _cmd_info()
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
