"""Command-line interface: regenerate any paper experiment.

Usage::

    python -m repro list
    python -m repro run fig3
    python -m repro run all
    python -m repro info
"""

from __future__ import annotations

import argparse
import sys


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Demystifying BERT: System Design "
                    "Implications' (IISWC 2022)")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list available experiments")

    run = commands.add_parser("run", help="run an experiment (or 'all')")
    run.add_argument("experiment", help="experiment id, e.g. fig3, or 'all'")

    export = commands.add_parser(
        "export", help="run an experiment and write its rows as CSV")
    export.add_argument("experiment", help="experiment id, e.g. fig3")
    export.add_argument("path", help="destination CSV file")

    commands.add_parser("info", help="model/device summary")
    return parser


def _cmd_list() -> int:
    from repro.experiments import REGISTRY

    width = max(len(eid) for eid in REGISTRY)
    for eid, experiment in REGISTRY.items():
        print(f"{eid.ljust(width)}  {experiment.description}")
    return 0


def _cmd_run(experiment_id: str) -> int:
    from repro.experiments import REGISTRY, run_experiment

    ids = list(REGISTRY) if experiment_id == "all" else [experiment_id]
    for eid in ids:
        title = f"{eid}: {REGISTRY[eid].description}" if eid in REGISTRY else eid
        print(f"\n{title}\n{'-' * len(title)}")
        print(run_experiment(eid))
    return 0


def _cmd_info() -> int:
    from repro.config import BERT_BASE, BERT_LARGE, C3
    from repro.hw import mi100
    from repro.ops.base import DType

    device = mi100()
    print("models:")
    for config in (BERT_BASE, BERT_LARGE, C3):
        print(f"  {config.name:12s} N={config.num_layers:3d} "
              f"d={config.d_model:5d} h={config.num_heads:3d} "
              f"params={config.total_parameters() / 1e6:7.1f}M")
    print(f"device: {device.name}")
    print(f"  FP32 GEMM effective peak: "
          f"{device.gemm_engine(DType.FP32).effective_peak / 1e12:.1f} "
          "TFLOP/s")
    print(f"  FP16 GEMM effective peak: "
          f"{device.gemm_engine(DType.FP16).effective_peak / 1e12:.1f} "
          "TFLOP/s")
    print(f"  memory bandwidth: {device.mem_bandwidth_gbps:.0f} GB/s")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        try:
            return _cmd_run(args.experiment)
        except KeyError as error:
            print(error.args[0], file=sys.stderr)
            return 2
    if args.command == "export":
        from repro.experiments.sweeps import export_experiment_csv
        try:
            export_experiment_csv(args.experiment, args.path)
        except (KeyError, TypeError) as error:
            print(str(error), file=sys.stderr)
            return 2
        print(f"wrote {args.path}")
        return 0
    if args.command == "info":
        return _cmd_info()
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
