"""Stamp one point family into a stacked, point-major KernelTable.

One emitter walk with :class:`~repro.grid.lanes.LaneTraining` lanes yields
*template* kernels whose numeric fields are ``(P,)`` arrays (one lane per
point).  This module assembles them into the same row order
:func:`repro.trace.bert_trace.build_iteration_trace` produces per point —
embedding FWD, encoder layers FWD (0..N-1), output head FWD+BWD, encoder
layers BWD (N-1..0), embedding BWD + optimizer — with each point's rows
**contiguous** in the stacked table.  Contiguity is what keeps per-point
aggregation bit-exact against the loop path: a point's times are a plain
slice, so masked sums reduce over the same arrays in the same order.

GEMM shapes are pooled across the whole family with one
``np.unique(axis=0)`` over the ``(m, n, k, batch, tA, tB, acc)`` integer
matrix; the pooled :class:`~repro.ops.gemm.GemmShape` records are rebuilt
from Python ints so they hash/compare equal to loop-built shapes and share
the per-device GEMM-time memo.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.config import BertConfig, TrainingConfig
from repro.grid.lanes import LaneTraining
from repro.ops.base import Kernel
from repro.ops.gemm import GemmShape
from repro.trace.bert_trace import (embedding_backward_kernels,
                                    embedding_forward_kernels,
                                    output_head_backward_kernels,
                                    output_head_forward_kernels,
                                    transformer_layer_backward_kernels,
                                    transformer_layer_forward_kernels)
from repro.trace.kernel_table import KernelTable, code_of
from repro.trace.parameters import bert_parameter_inventory

#: GemmShape fields flattened into the integer pooling matrix, in order.
_GEMM_FIELDS = ("m", "n", "k", "batch", "transpose_a", "transpose_b",
                "accumulate")


def _template_kernels(model: BertConfig, lanes: LaneTraining
                      ) -> tuple[list[Kernel], list[int]]:
    """Unique template kernels plus section sizes, in iteration order.

    Sections: embedding FWD, one encoder layer FWD, output head FWD+BWD,
    one encoder layer BWD, embedding BWD + optimizer.  The optimizer and
    parameter inventory depend only on the model and the family's
    structural fields, so they are emitted once (scalar) per family.
    """
    # Lazy for the same reason as build_iteration_trace: repro.optim needs
    # the parameter inventory from repro.trace, so a module-level import
    # of it here would be circular through repro.trace.bert_trace.
    from repro.optim.kernels import optimizer_kernels

    emb_fwd = embedding_forward_kernels(model, lanes)
    layer_fwd = transformer_layer_forward_kernels(model, lanes)
    heads = (output_head_forward_kernels(model, lanes)
             + output_head_backward_kernels(model, lanes))
    layer_bwd = transformer_layer_backward_kernels(model, lanes)
    tail = (embedding_backward_kernels(model, lanes)
            + optimizer_kernels(lanes.optimizer,
                                bert_parameter_inventory(model),
                                precision=lanes.precision,
                                fused=lanes.fuse_optimizer))
    sections = [emb_fwd, layer_fwd, heads, layer_bwd, tail]
    template = [kernel for section in sections for kernel in section]
    return template, [len(section) for section in sections]


def _point_layout(sizes: list[int], num_layers: int
                  ) -> tuple[np.ndarray, np.ndarray]:
    """(template row ids, layer attribution) of one point's row sequence.

    Mirrors ``build_iteration_trace``: the encoder-layer sections repeat
    ``num_layers`` times (FWD ascending, BWD descending layer stamp);
    everything else appears once with no layer attribution.
    """
    bounds = np.concatenate(([0], np.cumsum(sizes)))
    emb_f, layer_f, heads, layer_b, tail = (
        np.arange(bounds[i], bounds[i + 1]) for i in range(5))
    ids = np.concatenate([
        emb_f,
        np.tile(layer_f, num_layers),
        heads,
        np.tile(layer_b, num_layers),
        tail,
    ])
    layer = np.concatenate([
        np.full(sizes[0], -1, dtype=np.int32),
        np.repeat(np.arange(num_layers, dtype=np.int32), sizes[1]),
        np.full(sizes[2], -1, dtype=np.int32),
        np.repeat(np.arange(num_layers - 1, -1, -1, dtype=np.int32),
                  sizes[3]),
        np.full(sizes[4], -1, dtype=np.int32),
    ])
    return ids, layer


def _pool_gemms(template: list[Kernel],
                lane_count: int) -> tuple[np.ndarray, tuple[GemmShape, ...]]:
    """Per-(template row, lane) GEMM codes plus the pooled shape tuple."""
    gemm_rows = [i for i, k in enumerate(template) if k.gemm is not None]
    codes = np.full((len(template), lane_count), -1, dtype=np.int64)
    if not gemm_rows:
        return codes, ()
    dims = np.empty((len(gemm_rows), lane_count, len(_GEMM_FIELDS)),
                    dtype=np.int64)
    for j, i in enumerate(gemm_rows):
        shape = template[i].gemm
        for column, name in enumerate(_GEMM_FIELDS):
            dims[j, :, column] = getattr(shape, name)  # scalars broadcast
    unique, inverse = np.unique(dims.reshape(-1, len(_GEMM_FIELDS)),
                                axis=0, return_inverse=True)
    pool = tuple(
        GemmShape(m=int(row[0]), n=int(row[1]), k=int(row[2]),
                  batch=int(row[3]), transpose_a=bool(row[4]),
                  transpose_b=bool(row[5]), accumulate=bool(row[6]))
        for row in unique)
    codes[np.asarray(gemm_rows)] = inverse.reshape(len(gemm_rows),
                                                   lane_count)
    return codes, pool


def stamp_family(model: BertConfig, trainings: Sequence[TrainingConfig]
                 ) -> tuple[KernelTable, int]:
    """Stack one family's P points into a single point-major table.

    Returns ``(table, rows_per_point)``; point ``j`` (in ``trainings``
    order) owns rows ``[j * rows_per_point, (j + 1) * rows_per_point)``,
    in ``build_iteration_trace`` order.
    """
    lanes = LaneTraining(trainings)
    point_count = len(lanes)
    template, sizes = _template_kernels(model, lanes)
    ids, layer = _point_layout(sizes, model.num_layers)

    # Static per-template-row columns (identical across lanes).
    name_pool: dict[str, int] = {}
    fusion_pool: dict[str, int] = {}
    name_code = np.array(
        [name_pool.setdefault(k.name, len(name_pool)) for k in template],
        dtype=np.int32)
    fusion_code = np.array(
        [-1 if k.fusion_group is None
         else fusion_pool.setdefault(k.fusion_group, len(fusion_pool))
         for k in template], dtype=np.int32)

    def codes(attr: str) -> np.ndarray:
        return np.array([code_of(getattr(k, attr)) for k in template],
                        dtype=np.int8)

    # Numeric (template row, lane) matrices; scalar fields broadcast.
    def matrix(attr: str) -> np.ndarray:
        out = np.empty((len(template), point_count), dtype=np.int64)
        for i, kernel in enumerate(template):
            out[i, :] = getattr(kernel, attr)
        return out

    gemm_matrix, gemms = _pool_gemms(template, point_count)

    def tile(column: np.ndarray) -> np.ndarray:
        """Static column -> stacked P*K column (same values every point)."""
        return np.tile(column[ids], point_count)

    def stack(matrix_: np.ndarray) -> np.ndarray:
        """(template, lane) matrix -> point-major stacked column."""
        return matrix_[ids].T.ravel()

    table = KernelTable(
        name_code=tile(name_code), names=tuple(name_pool),
        op_class=tile(codes("op_class")), phase=tile(codes("phase")),
        component=tile(codes("component")), region=tile(codes("region")),
        dtype=tile(codes("dtype")), access=tile(codes("access")),
        flops=stack(matrix("flops")),
        bytes_read=stack(matrix("bytes_read")),
        bytes_written=stack(matrix("bytes_written")),
        n_elements=stack(matrix("n_elements")),
        layer=np.tile(layer, point_count),
        gemm_code=stack(gemm_matrix), gemms=gemms,
        fusion_code=tile(fusion_code), fusion_groups=tuple(fusion_pool))
    return table, len(ids)
