"""Lane vectorization of training operating points.

The trace emitters in :mod:`repro.trace.bert_trace` compute every kernel
cost from a handful of :class:`~repro.config.TrainingConfig` sizes
(``batch_size``, ``seq_len``, ``tokens_per_iteration``,
``masked_positions``).  All of that arithmetic is plain ``+ * //`` over
integers, so it vectorizes unchanged over NumPy arrays:
:class:`LaneTraining` duck-types ``TrainingConfig`` with one **lane** per
grid point, and a single emitter walk produces template kernels whose
numeric fields are ``(P,)`` arrays — one trace build for P points.

This only works when every point in the batch emits the *same kernel
sequence* (same names, op classes, regions, fusion groups — only sizes
differ).  :func:`family_key` captures exactly the fields that can change
the sequence; the grid engine groups points by it and stamps one template
per family.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.config import BertConfig, TrainingConfig


def family_key(model: BertConfig, training: TrainingConfig) -> tuple:
    """Grouping key under which points share one stamped template.

    Within a family the emitted kernel sequence is structurally identical
    across points — only the numeric columns vary by lane:

    * the model fixes layer count and all feature dimensions;
    * precision selects the activation dtype and the mixed-precision
      optimizer cast kernels;
    * optimizer / ``fuse_optimizer`` select the update-phase kernel set;
    * activation checkpointing rewrites the trace per point;
    * ``B * h > 1`` pins the batched-GEMM classification of the attention
      GEMMs (``shape.batch > 1``), the one structural property that
      depends on the input size.
    """
    return (model, training.precision, training.optimizer,
            training.fuse_optimizer, training.activation_checkpointing,
            training.batch_size * model.num_heads > 1)


class LaneTraining:
    """Duck-typed :class:`TrainingConfig` whose sizes are lane arrays.

    Structural fields (precision, optimizer, fusing, checkpointing) come
    from the first point — the caller guarantees all points share them
    (one :func:`family_key` family).  Size fields are ``(P,)`` ``int64``
    arrays, one lane per point, in the order given.
    """

    def __init__(self, trainings: Sequence[TrainingConfig]):
        if not trainings:
            raise ValueError("LaneTraining needs at least one point")
        first = trainings[0]
        self.batch_size = np.array([t.batch_size for t in trainings],
                                   dtype=np.int64)
        self.seq_len = np.array([t.seq_len for t in trainings],
                                dtype=np.int64)
        self.masked_fraction = np.array([t.masked_fraction for t in trainings],
                                        dtype=np.float64)
        self.precision = first.precision
        self.optimizer = first.optimizer
        self.fuse_optimizer = first.fuse_optimizer
        self.activation_checkpointing = first.activation_checkpointing

    def __len__(self) -> int:
        return len(self.batch_size)

    @property
    def tokens_per_iteration(self) -> np.ndarray:
        """Per-lane token count ``B * n``."""
        return self.batch_size * self.seq_len

    @property
    def masked_positions(self) -> np.ndarray:
        """Per-lane MLM position count.

        ``np.rint`` rounds half to even exactly like the scalar
        ``int(round(...))`` in :meth:`TrainingConfig.masked_positions`,
        so lanes match the scalar path bit for bit.
        """
        tokens = self.tokens_per_iteration
        rounded = np.rint(tokens * self.masked_fraction).astype(np.int64)
        return np.maximum(1, rounded)

    @property
    def label(self) -> str:
        """Synthetic label; emitters never read it, spans may."""
        return f"lanes[{len(self)}]"
