"""Batched grid-profiling engine.

Stamps a whole sweep grid — many ``(model, B, n, dtype)`` operating
points — into **one** stacked :class:`~repro.trace.kernel_table.
KernelTable` with a per-row point index, and prices the entire grid with
a single :func:`repro.hw.timing.kernel_times` call, so one ``np.unique``
over (shape, dtype) pairs evaluates every point's GEMMs in one batched
tile/wave-model pass.  Per-point results are bit-exact against the
:func:`repro.experiments.common.run_point` loop (the golden oracle the
test suite pins them to).

Layering: this package sits with :mod:`repro.trace` / :mod:`repro.hw`,
below :mod:`repro.experiments` — the sweep/figure modules call into it.
"""

from repro.grid.engine import (GridPoint, GridProfile, GridTrace,
                               build_grid_trace, grid_points, grid_summaries,
                               profile_grid)
from repro.grid.lanes import LaneTraining, family_key

__all__ = [
    "GridPoint", "GridProfile", "GridTrace", "LaneTraining",
    "build_grid_trace", "family_key", "grid_points", "grid_summaries",
    "profile_grid",
]
