"""Grid traces: whole sweep grids profiled as one stacked KernelTable.

:func:`build_grid_trace` groups points into stamp families
(:func:`~repro.grid.lanes.family_key`), stamps each family's template once
with lane-vectorized emitters, applies any per-point trace rewrites
(activation checkpointing, user pass pipelines) on the point's own row
slice, and concatenates everything into one table with per-point row
ranges.  :func:`profile_grid` then prices the whole grid with a **single**
:func:`~repro.hw.timing.kernel_times` call — one ``np.unique`` over
(GEMM shape, dtype) pairs covers every point — and hands back per-point
:class:`~repro.profiler.profiler.Profile` views that are bit-exact
against the :func:`~repro.experiments.common.run_point` loop.

:func:`grid_summaries` is the sweep-facing entry point: one disk-cache
entry per grid signature (:meth:`~repro.runner.cache.ResultCache.
grid_key`), per-point breakdown rows positionally aligned with the input.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.config import BertConfig, TrainingConfig
from repro.grid.lanes import family_key
from repro.grid.stamp import stamp_family
from repro.hw.device import DeviceModel, mi100
from repro.hw.timing import kernel_times
from repro.obs import metrics, spans
from repro.profiler.profiler import Profile
from repro.runner import telemetry
from repro.runner.cache import get_cache
from repro.trace.builder import Trace
from repro.trace.kernel_table import KernelTable
from repro.trace.passes import PassManager

_GRIDS = metrics.counter(
    "grid_engine.grids", "whole grids profiled through the batched engine")
_POINTS = metrics.counter(
    "grid_engine.points", "operating points priced via grid stamping")


@dataclass(frozen=True)
class GridPoint:
    """One operating point of a grid: a model at a training configuration."""

    model: BertConfig
    training: TrainingConfig


def grid_points(model: BertConfig,
                trainings: Iterable[TrainingConfig]) -> list[GridPoint]:
    """Convenience: one model crossed with many training configs."""
    return [GridPoint(model, training) for training in trainings]


def _normalize(points: Iterable) -> tuple[GridPoint, ...]:
    """Accept GridPoints or (model, training) pairs; reject empty grids."""
    normalized = []
    for point in points:
        if isinstance(point, GridPoint):
            normalized.append(point)
        else:
            model, training = point
            normalized.append(GridPoint(model, training))
    if not normalized:
        raise ValueError("a grid needs at least one point")
    return tuple(normalized)


class GridTrace:
    """P points stamped into one stacked table, each point's rows contiguous.

    ``point_index`` labels every row with its owning point (int32, the
    ``point`` column sweeps export); ``starts``/``stops`` give each
    point's half-open row range in input order.
    """

    def __init__(self, points: tuple[GridPoint, ...], table: KernelTable,
                 point_index: np.ndarray, starts: np.ndarray,
                 stops: np.ndarray):
        self.points = points
        self.table = table
        self.point_index = point_index
        self.starts = starts
        self.stops = stops

    def __len__(self) -> int:
        return len(self.points)

    def point_rows(self, index: int) -> tuple[int, int]:
        """Half-open row range ``[start, stop)`` of one point."""
        return int(self.starts[index]), int(self.stops[index])

    def point_table(self, index: int) -> KernelTable:
        """One point's rows as a pool-sharing KernelTable view."""
        start, stop = self.point_rows(index)
        return self.table.slice_rows(start, stop)

    def point_trace(self, index: int) -> Trace:
        """One point's rows wrapped as a regular columnar Trace."""
        point = self.points[index]
        return Trace.from_table(point.model, point.training,
                                self.point_table(index))


def _transform_point(table: KernelTable, model: BertConfig,
                     training: TrainingConfig,
                     passes: PassManager | None) -> KernelTable:
    """Apply the rewrites run_point's build path would, on one point's rows.

    Trace passes see one iteration at a time — running them on the stacked
    table would let window/pairing logic leak across point boundaries.
    """
    if training.activation_checkpointing:
        # Lazy: repro.memoryplan imports repro.trace at module scope.
        from repro.memoryplan.checkpointing import CheckpointingPass
        table = PassManager((CheckpointingPass(),)).run_table(
            table, model, training)
    if passes is not None and passes.passes:
        table = passes.run_table(table, model, training)
    return table


def build_grid_trace(points: Iterable, *,
                     passes: PassManager | None = None) -> GridTrace:
    """Stamp a whole grid into one stacked KernelTable.

    Points are grouped by :func:`family_key`; each family is stamped once
    via lane-vectorized emitters regardless of how many points it holds.
    Row ranges come back in *input* order even though stamping proceeds
    family by family.
    """
    points = _normalize(points)
    with spans.span("grid.build", points=len(points)):
        families: dict[tuple, tuple[list[int], list[TrainingConfig]]] = {}
        for index, point in enumerate(points):
            key = family_key(point.model, point.training)
            indices, trainings = families.setdefault(key, ([], []))
            indices.append(index)
            trainings.append(point.training)

        pieces: list[KernelTable] = []
        layout: list[tuple[int, int]] = []  # (input index, row count)
        for key, (indices, trainings) in families.items():
            model = key[0]
            with spans.span("grid.stamp", model=model.name,
                            points=len(trainings)):
                table, rows_per_point = stamp_family(model, trainings)
                spans.annotate(kernels=len(table))
            needs_rewrite = (trainings[0].activation_checkpointing
                             or (passes is not None and passes.passes))
            if needs_rewrite:
                for j, (index, training) in enumerate(zip(indices,
                                                          trainings)):
                    sub = _transform_point(
                        table.slice_rows(j * rows_per_point,
                                         (j + 1) * rows_per_point),
                        model, training, passes)
                    pieces.append(sub)
                    layout.append((index, len(sub)))
            else:
                pieces.append(table)
                layout.extend((index, rows_per_point) for index in indices)

        stacked = pieces[0] if len(pieces) == 1 else KernelTable.concat(pieces)
        starts = np.empty(len(points), dtype=np.int64)
        stops = np.empty(len(points), dtype=np.int64)
        point_index = np.empty(len(stacked), dtype=np.int32)
        offset = 0
        for index, count in layout:
            starts[index] = offset
            stops[index] = offset + count
            point_index[offset:offset + count] = index
            offset += count
        spans.annotate(kernels=len(stacked), families=len(families))
    return GridTrace(points, stacked, point_index, starts, stops)


class GridProfile:
    """One timing array covering a whole grid, sliceable per point.

    Every per-point accessor reduces over the *same contiguous slice* the
    loop path's Profile would hold, so totals and masked breakdowns match
    :func:`~repro.experiments.common.run_point` bit for bit.
    """

    def __init__(self, trace: GridTrace, device: DeviceModel,
                 times: np.ndarray):
        self.trace = trace
        self.device = device
        times = np.asarray(times, dtype=np.float64)
        times.flags.writeable = False
        self.times = times

    def __len__(self) -> int:
        return len(self.trace)

    @property
    def points(self) -> tuple[GridPoint, ...]:
        return self.trace.points

    def point_profile(self, index: int) -> Profile:
        """One point's rows + times as a regular columnar Profile."""
        start, stop = self.trace.point_rows(index)
        return Profile(self.device, table=self.trace.point_table(index),
                       times=self.times[start:stop])

    def point_total(self, index: int) -> float:
        """One point's iteration time in seconds."""
        start, stop = self.trace.point_rows(index)
        return float(np.sum(self.times[start:stop]))

    def totals(self) -> np.ndarray:
        """Per-point iteration times, input order."""
        return np.array([self.point_total(i) for i in range(len(self))])


def profile_grid(points: Iterable, device: DeviceModel | None = None, *,
                 passes: PassManager | None = None) -> GridProfile:
    """Build and price a whole grid with one batched timing evaluation."""
    grid = build_grid_trace(points, passes=passes)
    if device is None:
        device = mi100()
    with spans.span("grid.profile", points=len(grid),
                    kernels=len(grid.table), device=device.name):
        times = kernel_times(grid.table, device)
    _GRIDS.inc()
    _POINTS.inc(len(grid))
    collector = telemetry.current()
    if collector is not None:
        for index in range(len(grid)):
            start, stop = grid.point_rows(index)
            collector.record_point(kernels=stop - start, hit=False)
    return GridProfile(grid, device, times)


def grid_summaries(points: Iterable, device: DeviceModel | None = None, *,
                   passes: PassManager | None = None,
                   use_cache: bool = True) -> list[dict]:
    """Per-point breakdown rows for a whole grid, disk-cached as one entry.

    Rows are :func:`repro.profiler.breakdown.summarize` dicts,
    positionally aligned with ``points``.  The cache entry is keyed on the
    full grid signature (:meth:`~repro.runner.cache.ResultCache.grid_key`)
    — any point, the device, the code, or the pass pipeline changing
    invalidates it.
    """
    from repro.profiler.breakdown import summarize

    points = _normalize(points)
    if device is None:
        device = mi100()
    pipeline = passes.signature if passes is not None else ""
    cache = get_cache()
    key = cache.grid_key(((p.model, p.training) for p in points), device,
                         pipeline=pipeline)
    if use_cache:
        payload = cache.get_payload(key)
        if payload is not None:
            collector = telemetry.current()
            if collector is not None:
                for kernels in payload["kernels"]:
                    collector.record_point(kernels=int(kernels), hit=True)
            return [dict(row) for row in payload["rows"]]

    profile = profile_grid(points, device, passes=passes)
    rows = [summarize(profile.point_profile(i)) for i in range(len(points))]
    if use_cache:
        kernels = [stop - start for start, stop in
                   zip(profile.trace.starts.tolist(),
                       profile.trace.stops.tolist())]
        cache.put_payload(key, {"rows": rows, "kernels": kernels})
    return [dict(row) for row in rows]
