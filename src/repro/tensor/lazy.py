"""Lazy dataflow graph underlying the tensor engine.

Eagerly-executing tensor code and the analytic kernel trace
(:mod:`repro.trace`) used to be two separate artifacts that could drift.
This module provides the single source of truth that unifies them: a
:class:`LazyOp` dataflow node.  Under :func:`lazy_mode`, tensor ops build
``LazyOp`` nodes instead of calling NumPy immediately; the scheduler
(:mod:`repro.tensor.schedule`) linearizes the graph, executes the NumPy
kernels, and the trace lowerer (:mod:`repro.trace.lowerer`) maps the same
schedule into :class:`~repro.trace.kernel_table.KernelTable` rows — so
running an iteration *is* tracing it.

Design notes (tinygrad-shaped, NumPy-sized):

* Node identifiers (``nid``) are allocated from one monotonic counter at
  construction time.  Sources are always constructed before consumers, so
  ``sorted(nodes, key=nid)`` is simultaneously a valid topological order
  and a deterministic one — the scheduler needs no explicit DFS ordering.
* A node is either a **buffer** (``kind == "buffer"``: a realized array,
  or an allocator thunk for data-free graphs that are lowered but never
  executed) or an **op** (``compute`` maps source arrays to the output
  array).  Only op nodes become schedule items and kernel rows.
* ``owner`` is a weak reference to the :class:`~repro.tensor.tensor.Tensor`
  fronting the node.  Together with ``_pending`` (how many constructed
  consumers have not yet executed) it drives buffer reuse: once every
  consumer has run and no live tensor can mint new consumers, the
  scheduler drops the realized array.
* Laziness is scoped with a :class:`contextvars.ContextVar`, so it nests
  and propagates correctly across the server's worker threads.
"""

from __future__ import annotations

import contextvars
import itertools
import weakref
from contextlib import contextmanager
from typing import Callable

#: Kind string reserved for leaf buffers (inputs, parameters, constants).
BUFFER = "buffer"

_NIDS = itertools.count()

_LAZY: contextvars.ContextVar[bool] = contextvars.ContextVar(
    "repro_tensor_lazy", default=False)


def is_lazy() -> bool:
    """Whether tensor ops currently build graph nodes instead of executing."""
    return _LAZY.get()


@contextmanager
def lazy_mode(enabled: bool = True):
    """Scope within which tensor ops append :class:`LazyOp` nodes.

    The default mode is eager (realize-on-construction), which is the
    golden oracle: gradients, losses and kernel streams must be
    bit-identical between the two modes.
    """
    token = _LAZY.set(bool(enabled))
    try:
        yield
    finally:
        _LAZY.reset(token)


class LazyOp:
    """One node of the lazy dataflow graph.

    Attributes:
        nid: monotonically increasing id; doubles as the topological key.
        kind: op name (``"matmul"``, ``"softmax"``, ...) or :data:`BUFFER`.
        srcs: source nodes, in operand order.
        shape: inferred output shape (known without executing).
        dtype: inferred output NumPy dtype.
        compute: maps realized source arrays to the output array.  ``None``
            for realized buffers; for data-free buffers it is the allocator
            thunk invoked only if the graph is actually executed.
        record_shapes: operand shapes reported to
            :mod:`repro.tensor.recording` when the node executes.
        meta: lowering metadata (kernel attribution); opaque to execution.
        realized: the output array once executed (or ``None``).
    """

    __slots__ = ("nid", "kind", "srcs", "shape", "dtype", "compute",
                 "record_shapes", "meta", "realized", "owner", "_pending",
                 "__weakref__")

    def __init__(self, kind: str, srcs: tuple["LazyOp", ...], shape, dtype,
                 compute: Callable | None, *, record_shapes=None, meta=None):
        self.nid = next(_NIDS)
        self.kind = kind
        self.srcs = srcs
        self.shape = tuple(shape)
        self.dtype = dtype
        self.compute = compute
        self.record_shapes = record_shapes
        self.meta = meta
        self.realized = None
        self.owner = None
        self._pending = 0
        for src in srcs:
            src._pending += 1

    # ------------------------------------------------------------- helpers
    @property
    def is_buffer(self) -> bool:
        return self.kind == BUFFER

    def set_owner(self, tensor) -> None:
        """Weakly link the tensor fronting this node (for buffer reuse)."""
        self.owner = weakref.ref(tensor)

    def owner_alive(self) -> bool:
        return self.owner is not None and self.owner() is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "realized" if self.realized is not None else "pending"
        return (f"LazyOp(nid={self.nid}, kind={self.kind!r}, "
                f"shape={self.shape}, {state})")


def buffer(array, *, meta=None) -> LazyOp:
    """A realized leaf node wrapping ``array``."""
    node = LazyOp(BUFFER, (), array.shape, array.dtype, None, meta=meta)
    node.realized = array
    return node


def deferred_buffer(shape, dtype, allocate: Callable | None = None,
                    *, meta=None) -> LazyOp:
    """A leaf node whose storage is allocated only if execution needs it.

    Data-free graphs (BERT Large built purely for lowering) use these so
    that graph construction never touches gigabytes of parameter memory;
    ``allocate`` runs lazily on first use during :func:`~repro.tensor.
    schedule.realize`.
    """
    return LazyOp(BUFFER, (), shape, dtype, allocate, meta=meta)
