"""Neural-network functional ops built on the autograd Tensor.

Softmax, LayerNorm, GeLU, dropout, embedding lookup and the losses BERT
needs.  Where numerical stability matters (softmax, log-softmax) the ops
are implemented as dedicated primitives rather than compositions.  Every
primitive goes through :meth:`Tensor._op`, so the same code builds lazy
graph nodes under :func:`repro.tensor.lazy.lazy_mode`.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.tensor import Tensor


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis``."""
    def compute(a: np.ndarray) -> np.ndarray:
        shifted = a - a.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=axis, keepdims=True)

    def grad_compute(g: np.ndarray, o: np.ndarray) -> np.ndarray:
        dot = (g * o).sum(axis=axis, keepdims=True)
        return o * (g - dot)

    def backward(grad: Tensor) -> None:
        if x.requires_grad:
            x._accumulate(Tensor._op(
                "softmax_bwd", (grad, out), grad_compute, None,
                shape=np.broadcast_shapes(grad.shape, out.shape),
                dtype=np.result_type(grad.dtype, out.dtype)))
    out = Tensor._op("softmax", (x,), compute, backward,
                     shape=x.shape, dtype=x.dtype)
    return out


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable log-softmax along ``axis``."""
    def compute(a: np.ndarray) -> np.ndarray:
        shifted = a - a.max(axis=axis, keepdims=True)
        log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        return shifted - log_sum

    def grad_compute(g: np.ndarray, o: np.ndarray) -> np.ndarray:
        soft = np.exp(o)
        return g - soft * g.sum(axis=axis, keepdims=True)

    def backward(grad: Tensor) -> None:
        if x.requires_grad:
            x._accumulate(Tensor._op(
                "log_softmax_bwd", (grad, out), grad_compute, None,
                shape=np.broadcast_shapes(grad.shape, out.shape),
                dtype=np.result_type(grad.dtype, out.dtype)))
    out = Tensor._op("log_softmax", (x,), compute, backward,
                     shape=x.shape, dtype=x.dtype)
    return out


def gelu(x: Tensor) -> Tensor:
    """Gaussian Error Linear Unit, exact erf form (paper Eq. 1)."""
    inv_sqrt2 = 1.0 / np.sqrt(2.0)
    return x * 0.5 * ((x * inv_sqrt2).erf() + 1.0)


def layer_norm(x: Tensor, gain: Tensor, bias: Tensor,
               eps: float = 1e-5) -> Tensor:
    """LayerNorm over the last axis with learnable gain and bias."""
    mean = x.mean(axis=-1, keepdims=True)
    centered = x - mean
    variance = (centered * centered).mean(axis=-1, keepdims=True)
    normalized = centered * ((variance + eps) ** -0.5)
    return normalized * gain + bias


def dropout(x: Tensor, p: float, rng: np.random.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout: scales kept activations by ``1/(1-p)``."""
    if not 0.0 <= p < 1.0:
        raise ValueError("dropout probability must be in [0, 1)")
    if not training or p == 0.0:
        return x
    keep = (rng.random(x.shape) >= p).astype(x.dtype) / (1.0 - p)
    return x * Tensor(keep)


def embedding(table: Tensor, indices: np.ndarray) -> Tensor:
    """Row gather from an embedding table with scatter-add backward."""
    indices = np.asarray(indices)
    table_shape = table.shape

    def grad_compute(g: np.ndarray, t: np.ndarray) -> np.ndarray:
        full = np.zeros_like(t)
        np.add.at(full, indices.reshape(-1), g.reshape(-1, t.shape[-1]))
        return full

    def backward(grad: Tensor) -> None:
        if table.requires_grad:
            table._accumulate(Tensor._op(
                "scatter_add", (grad, table), grad_compute, None,
                shape=table_shape, dtype=table.dtype))
    return Tensor._op(
        "gather", (table,), lambda t: t[indices], backward,
        shape=tuple(indices.shape) + tuple(table_shape[1:]),
        dtype=table.dtype,
        record_shapes=(table_shape, tuple(indices.shape)))


def cross_entropy(logits: Tensor, targets: np.ndarray,
                  ignore_index: int | None = None) -> Tensor:
    """Mean cross-entropy over rows of ``logits``.

    Args:
        logits: ``(rows, classes)`` scores.
        targets: ``(rows,)`` integer class labels.
        ignore_index: rows with this label contribute nothing (BERT's MLM
            loss ignores unmasked positions this way).
    """
    targets = np.asarray(targets)
    if logits.ndim != 2 or targets.shape != (logits.shape[0],):
        raise ValueError("expected (rows, classes) logits and (rows,) targets")
    log_probs = log_softmax(logits, axis=-1)
    rows = np.arange(logits.shape[0])
    if ignore_index is not None:
        valid = targets != ignore_index
        count = max(1, int(valid.sum()))
        safe_targets = np.where(valid, targets, 0)
        picked = log_probs[rows, safe_targets]
        weights = valid.astype(logits.dtype) / count
        return -(picked * Tensor(weights)).sum()
    picked = log_probs[rows, targets]
    return -picked.mean()


def masked_fill(x: Tensor, mask: np.ndarray, value: float) -> Tensor:
    """Where ``mask`` is true, replace ``x`` by ``value`` (no grad there)."""
    mask = np.asarray(mask, dtype=bool)
    keep = Tensor((~mask).astype(x.dtype))
    fill = Tensor(mask.astype(x.dtype) * value)
    return x * keep + fill


def attention_mask_bias(padding_mask: np.ndarray,
                        dtype=np.float32) -> np.ndarray:
    """Additive attention bias from a ``(B, n)`` padding mask.

    Valid positions get 0, padded positions a large negative value, shaped
    ``(B, 1, 1, n)`` for broadcasting across heads and query positions —
    the mask-add kernel of the paper's Scale+Mask+DR+SM phase.
    """
    padding_mask = np.asarray(padding_mask, dtype=bool)
    bias = np.where(padding_mask, 0.0, -1e9).astype(dtype)
    return bias[:, None, None, :]


def causal_attention_bias(seq_len: int, dtype=np.float32) -> np.ndarray:
    """Additive causal (decoder) mask of shape ``(1, 1, n, n)``.

    Position ``i`` may attend only to positions ``<= i`` — the masked
    attention of decoder stacks like GPT (Sec. 2.3: the decoder "is similar
    to encoder except its attention layer is masked to consider only past
    tokens ... it only zeros certain matrix elements", so training cost is
    unchanged).
    """
    if seq_len < 1:
        raise ValueError("seq_len must be positive")
    future = np.triu(np.ones((seq_len, seq_len), dtype=bool), k=1)
    bias = np.where(future, -1e9, 0.0).astype(dtype)
    return bias[None, None, :, :]


def combine_attention_biases(*biases: np.ndarray | None) -> np.ndarray | None:
    """Sum broadcastable additive attention biases, skipping ``None``."""
    present = [b for b in biases if b is not None]
    if not present:
        return None
    combined = present[0]
    for bias in present[1:]:
        combined = combined + bias
    return combined
