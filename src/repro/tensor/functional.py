"""Neural-network functional ops built on the autograd Tensor.

Softmax, LayerNorm, GeLU, dropout, embedding lookup and the losses BERT
needs.  Where numerical stability matters (softmax, log-softmax) the ops
are implemented as dedicated primitives rather than compositions.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.tensor import Tensor


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            x._accumulate(out_data * (grad - dot))
    return Tensor._make(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_sum

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            soft = np.exp(out_data)
            x._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))
    return Tensor._make(out_data, (x,), backward)


def gelu(x: Tensor) -> Tensor:
    """Gaussian Error Linear Unit, exact erf form (paper Eq. 1)."""
    inv_sqrt2 = 1.0 / np.sqrt(2.0)
    return x * 0.5 * ((x * inv_sqrt2).erf() + 1.0)


def layer_norm(x: Tensor, gain: Tensor, bias: Tensor,
               eps: float = 1e-5) -> Tensor:
    """LayerNorm over the last axis with learnable gain and bias."""
    mean = x.mean(axis=-1, keepdims=True)
    centered = x - mean
    variance = (centered * centered).mean(axis=-1, keepdims=True)
    normalized = centered * ((variance + eps) ** -0.5)
    return normalized * gain + bias


def dropout(x: Tensor, p: float, rng: np.random.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout: scales kept activations by ``1/(1-p)``."""
    if not 0.0 <= p < 1.0:
        raise ValueError("dropout probability must be in [0, 1)")
    if not training or p == 0.0:
        return x
    keep = (rng.random(x.shape) >= p).astype(x.dtype) / (1.0 - p)
    return x * Tensor(keep)


def embedding(table: Tensor, indices: np.ndarray) -> Tensor:
    """Row gather from an embedding table with scatter-add backward."""
    indices = np.asarray(indices)
    out_data = table.data[indices]

    def backward(grad: np.ndarray) -> None:
        if table.requires_grad:
            full = np.zeros_like(table.data)
            np.add.at(full, indices.reshape(-1),
                      grad.reshape(-1, table.data.shape[-1]))
            table._accumulate(full)
    return Tensor._make(out_data, (table,), backward)


def cross_entropy(logits: Tensor, targets: np.ndarray,
                  ignore_index: int | None = None) -> Tensor:
    """Mean cross-entropy over rows of ``logits``.

    Args:
        logits: ``(rows, classes)`` scores.
        targets: ``(rows,)`` integer class labels.
        ignore_index: rows with this label contribute nothing (BERT's MLM
            loss ignores unmasked positions this way).
    """
    targets = np.asarray(targets)
    if logits.ndim != 2 or targets.shape != (logits.shape[0],):
        raise ValueError("expected (rows, classes) logits and (rows,) targets")
    log_probs = log_softmax(logits, axis=-1)
    rows = np.arange(logits.shape[0])
    if ignore_index is not None:
        valid = targets != ignore_index
        count = max(1, int(valid.sum()))
        safe_targets = np.where(valid, targets, 0)
        picked = log_probs[rows, safe_targets]
        weights = valid.astype(logits.dtype) / count
        return -(picked * Tensor(weights)).sum()
    picked = log_probs[rows, targets]
    return -picked.mean()


def masked_fill(x: Tensor, mask: np.ndarray, value: float) -> Tensor:
    """Where ``mask`` is true, replace ``x`` by ``value`` (no grad there)."""
    mask = np.asarray(mask, dtype=bool)
    keep = Tensor((~mask).astype(x.dtype))
    fill = Tensor(mask.astype(x.dtype) * value)
    return x * keep + fill


def attention_mask_bias(padding_mask: np.ndarray,
                        dtype=np.float32) -> np.ndarray:
    """Additive attention bias from a ``(B, n)`` padding mask.

    Valid positions get 0, padded positions a large negative value, shaped
    ``(B, 1, 1, n)`` for broadcasting across heads and query positions —
    the mask-add kernel of the paper's Scale+Mask+DR+SM phase.
    """
    padding_mask = np.asarray(padding_mask, dtype=bool)
    bias = np.where(padding_mask, 0.0, -1e9).astype(dtype)
    return bias[:, None, None, :]


def causal_attention_bias(seq_len: int, dtype=np.float32) -> np.ndarray:
    """Additive causal (decoder) mask of shape ``(1, 1, n, n)``.

    Position ``i`` may attend only to positions ``<= i`` — the masked
    attention of decoder stacks like GPT (Sec. 2.3: the decoder "is similar
    to encoder except its attention layer is masked to consider only past
    tokens ... it only zeros certain matrix elements", so training cost is
    unchanged).
    """
    if seq_len < 1:
        raise ValueError("seq_len must be positive")
    future = np.triu(np.ones((seq_len, seq_len), dtype=bool), k=1)
    bias = np.where(future, -1e9, 0.0).astype(dtype)
    return bias[None, None, :, :]


def combine_attention_biases(*biases: np.ndarray | None) -> np.ndarray | None:
    """Sum broadcastable additive attention biases, skipping ``None``."""
    present = [b for b in biases if b is not None]
    if not present:
        return None
    combined = present[0]
    for bias in present[1:]:
        combined = combined + bias
    return combined
