"""Module/parameter system and basic layers.

A light ``torch.nn``-style layer system over the autograd Tensor: parameter
registration and traversal, train/eval mode, and the building-block layers
BERT composes (Linear, LayerNorm, Dropout, Embedding).
"""

from __future__ import annotations

import numpy as np

from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor (always requires grad)."""

    def __init__(self, data, name: str | None = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class with parameter registration and mode switching."""

    def __init__(self):
        self._modules: dict[str, Module] = {}
        self._parameters: dict[str, Parameter] = {}
        self.training = True

    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def named_parameters(self, prefix: str = ""):
        """Yield ``(qualified_name, Parameter)`` pairs, depth first."""
        for name, param in self._parameters.items():
            yield (f"{prefix}.{name}" if prefix else name), param
        for name, module in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from module.named_parameters(child_prefix)

    def parameters(self):
        """Yield all parameters."""
        for _, param in self.named_parameters():
            yield param

    def num_parameters(self) -> int:
        """Total trainable element count."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter array by qualified name."""
        return {name: param.data.copy()
                for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter arrays by qualified name (strict)."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(unexpected)}")
        for name, param in own.items():
            if param.data.shape != state[name].shape:
                raise ValueError(f"shape mismatch for {name}")
            param.data = state[name].astype(param.data.dtype).copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError


class Linear(Module):
    """Dense layer ``y = x @ W^T + b`` with truncated-normal init."""

    def __init__(self, d_in: int, d_out: int, *,
                 rng: np.random.Generator, init_std: float = 0.02,
                 dtype=np.float32):
        super().__init__()
        self.d_in, self.d_out = d_in, d_out
        weight = _truncated_normal(rng, (d_out, d_in), init_std).astype(dtype)
        self.weight = Parameter(weight, name="weight")
        self.bias = Parameter(np.zeros(d_out, dtype=dtype), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        return x.matmul(self.weight.transpose()) + self.bias


class LayerNorm(Module):
    """LayerNorm over the last dimension."""

    def __init__(self, d_model: int, *, eps: float = 1e-5, dtype=np.float32):
        super().__init__()
        self.eps = eps
        self.gain = Parameter(np.ones(d_model, dtype=dtype), name="gain")
        self.bias = Parameter(np.zeros(d_model, dtype=dtype), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.gain, self.bias, eps=self.eps)


class Dropout(Module):
    """Inverted dropout driven by an explicit RNG for reproducibility."""

    def __init__(self, p: float, rng: np.random.Generator):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self.rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.rng, training=self.training)


class Embedding(Module):
    """Lookup table with truncated-normal init."""

    def __init__(self, num_embeddings: int, d_model: int, *,
                 rng: np.random.Generator, init_std: float = 0.02,
                 dtype=np.float32):
        super().__init__()
        table = _truncated_normal(rng, (num_embeddings, d_model),
                                  init_std).astype(dtype)
        self.weight = Parameter(table, name="weight")

    def forward(self, indices: np.ndarray) -> Tensor:
        return F.embedding(self.weight, indices)


def _truncated_normal(rng: np.random.Generator, shape: tuple[int, ...],
                      std: float) -> np.ndarray:
    """Normal samples truncated at two standard deviations (BERT's init)."""
    samples = rng.normal(0.0, std, size=shape)
    bound = 2.0 * std
    bad = np.abs(samples) > bound
    while bad.any():
        samples[bad] = rng.normal(0.0, std, size=int(bad.sum()))
        bad = np.abs(samples) > bound
    return samples
