"""Op recording hooks for trace cross-validation.

The analytic kernel trace (:mod:`repro.trace`) claims BERT's layers manifest
as specific GEMM shapes (Table 2b) at specific precisions.  To keep that
claim honest, the tensor engine reports every executed op here; tests run
the real NumPy model under :func:`record` capture and compare the observed
matmul shapes *and dtypes* against the analytic trace.

Recording observes **execution**, not graph construction: the eager path
records as each op computes, and the lazy path records from
:func:`repro.tensor.schedule.execute` when the scheduler realizes a node —
so a capture around ``loss.data`` sees the same stream either way.

Sinks are registered under integer tokens (monotonic, O(1) detach) so
captures nest safely: detaching an outer capture while an inner one is
still active — or vice versa, in any order — never scans or disturbs the
other sinks the way the previous ``list.remove`` bookkeeping could.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from dataclasses import dataclass


@dataclass(frozen=True)
class OpRecord:
    """One recorded tensor op.

    Attributes:
        kind: op name (``"matmul"``, ``"add"``, ``"mul"``, ...).
        shapes: operand shapes, in order.
        dtype: NumPy dtype name of the output (``"float32"``), or ``None``
            when the recorder predates dtype reporting.
        out_shape: shape of the produced array, or ``None``.
    """

    kind: str
    shapes: tuple[tuple[int, ...], ...]
    dtype: str | None = None
    out_shape: tuple[int, ...] | None = None

    def matmul_mnk(self) -> tuple[int, int, int, int]:
        """(m, n, k, batch) of a recorded matmul, collapsing batch dims."""
        if self.kind != "matmul":
            raise ValueError("not a matmul record")
        a, b = self.shapes
        m, k = a[-2], a[-1]
        n = b[-1]
        batch = 1
        for dim in a[:-2]:
            batch *= dim
        return m, n, k, batch


#: Active sinks by token.  A dict keeps detach O(1) and nesting-safe; the
#: insertion order (outer capture first) is preserved for record fan-out.
_active: dict[int, list[OpRecord]] = {}
_tokens = itertools.count()


def record(kind: str, *shapes: tuple[int, ...], dtype=None,
           out_shape=None) -> None:
    """Report an executed op to any active recorders (no-op otherwise)."""
    if not _active:
        return
    entry = OpRecord(kind=kind,
                     shapes=tuple(tuple(s) for s in shapes),
                     dtype=None if dtype is None else str(dtype),
                     out_shape=None if out_shape is None else tuple(out_shape))
    for sink in _active.values():
        sink.append(entry)


def attach(sink: list[OpRecord]) -> int:
    """Register ``sink`` to receive records; returns its detach token."""
    token = next(_tokens)
    _active[token] = sink
    return token


def detach(token: int) -> None:
    """Unregister a sink by token (idempotent, O(1))."""
    _active.pop(token, None)


@contextmanager
def capture():
    """Context manager collecting all ops executed inside it.

    Yields:
        The list that fills with :class:`OpRecord` entries.
    """
    sink: list[OpRecord] = []
    token = attach(sink)
    try:
        yield sink
    finally:
        detach(token)


def matmuls(records: list[OpRecord]) -> list[OpRecord]:
    """Only the matmul records of a capture."""
    return [r for r in records if r.kind == "matmul"]
