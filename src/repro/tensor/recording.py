"""Op recording hooks for trace cross-validation.

The analytic kernel trace (:mod:`repro.trace`) claims BERT's layers manifest
as specific GEMM shapes (Table 2b).  To keep that claim honest, the autograd
engine reports every executed op here; tests run the real NumPy model under
:func:`record` capture and compare the observed matmul shapes against the
analytic trace.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass


@dataclass(frozen=True)
class OpRecord:
    """One recorded tensor op.

    Attributes:
        kind: op name (``"matmul"``, ``"add"``, ``"mul"``, ...).
        shapes: operand shapes, in order.
    """

    kind: str
    shapes: tuple[tuple[int, ...], ...]

    def matmul_mnk(self) -> tuple[int, int, int, int]:
        """(m, n, k, batch) of a recorded matmul, collapsing batch dims."""
        if self.kind != "matmul":
            raise ValueError("not a matmul record")
        a, b = self.shapes
        m, k = a[-2], a[-1]
        n = b[-1]
        batch = 1
        for dim in a[:-2]:
            batch *= dim
        return m, n, k, batch


_active: list[list[OpRecord]] = []


def record(kind: str, *shapes: tuple[int, ...]) -> None:
    """Report an executed op to any active recorders (no-op otherwise)."""
    if not _active:
        return
    entry = OpRecord(kind=kind, shapes=tuple(tuple(s) for s in shapes))
    for sink in _active:
        sink.append(entry)


@contextmanager
def capture():
    """Context manager collecting all ops executed inside it.

    Yields:
        The list that fills with :class:`OpRecord` entries.
    """
    sink: list[OpRecord] = []
    _active.append(sink)
    try:
        yield sink
    finally:
        _active.remove(sink)


def matmuls(records: list[OpRecord]) -> list[OpRecord]:
    """Only the matmul records of a capture."""
    return [r for r in records if r.kind == "matmul"]
