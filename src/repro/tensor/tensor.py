"""A small reverse-mode autograd engine over NumPy, lazy-graph capable.

This is the executable substrate of the reproduction: enough of a tensor
library to express and *train* BERT end-to-end (matmul and batched matmul,
broadcasting elementwise arithmetic, reductions, shape ops), with gradients
checked against finite differences in the test suite.

Design notes:

* every op flows through one chokepoint, :meth:`Tensor._op`.  In the
  default eager mode it executes the NumPy kernel immediately
  (realize-on-construction — the golden oracle); under
  :func:`repro.tensor.lazy.lazy_mode` it appends a
  :class:`~repro.tensor.lazy.LazyOp` node instead, and the scheduler
  (:mod:`repro.tensor.schedule`) executes the graph on demand when
  ``.data`` is read.  Both paths run the *same* ``compute`` closures, so
  results are bit-identical;
* every differentiable op appends a node to an implicit tape via parent
  links; :meth:`Tensor.backward` runs a topological sweep.  The vector-
  Jacobian products are themselves expressed as tensor ops, so in lazy
  mode ``backward()`` extends the graph (a lazy backward pass) instead of
  forcing realization;
* broadcasting is handled by summing gradients over broadcast axes
  (:func:`_unbroadcast`);
* an optional op recorder (:mod:`repro.tensor.recording`) observes every
  executed op so tests can cross-validate the analytic kernel trace
  against the shapes and dtypes the model actually executes.
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager
from typing import Callable, Iterable

import numpy as np

from repro.tensor import lazy, recording
from repro.tensor.lazy import LazyOp

_GRAD_ENABLED: contextvars.ContextVar[bool] = contextvars.ContextVar(
    "repro_tensor_grad", default=True)


@contextmanager
def no_grad():
    """Scope in which ops build no autograd tape (used by backward itself)."""
    token = _GRAD_ENABLED.set(False)
    try:
        yield
    finally:
        _GRAD_ENABLED.reset(token)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing broadcast axes."""
    if grad.shape == shape:
        return grad
    # Sum leading axes added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum axes that were size-1 in the original shape.
    for axis, dim in enumerate(shape):
        if dim == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


def _as_array(value, dtype=None) -> np.ndarray:
    array = np.asarray(value)
    if dtype is not None:
        array = array.astype(dtype, copy=False)
    elif array.dtype not in (np.float32, np.float64):
        array = array.astype(np.float64)
    return array


def _reduced_shape(shape: tuple[int, ...], axis, keepdims: bool):
    """Output shape of a sum/mean/max over ``axis``."""
    if axis is None:
        return tuple(1 for _ in shape) if keepdims else ()
    axes = (axis,) if isinstance(axis, int) else tuple(axis)
    axes = tuple(a % len(shape) for a in axes)
    if keepdims:
        return tuple(1 if i in axes else d for i, d in enumerate(shape))
    return tuple(d for i, d in enumerate(shape) if i not in axes)


def _matmul_shape(a: tuple[int, ...], b: tuple[int, ...]) -> tuple[int, ...]:
    """Output shape of ``np.matmul`` on operands shaped ``a`` and ``b``."""
    if len(a) == 1 and len(b) == 1:
        return ()
    if len(a) == 1:
        return tuple(np.broadcast_shapes(a[:0], b[:-2])) + (b[-1],)
    if len(b) == 1:
        return tuple(np.broadcast_shapes(a[:-2], b[1:][:0])) + (a[-2],)
    batch = np.broadcast_shapes(a[:-2], b[:-2])
    return tuple(batch) + (a[-2], b[-1])


def _reshape_shape(size: int, shape: tuple[int, ...]) -> tuple[int, ...]:
    """Resolve a ``-1`` placeholder against the total element count."""
    if -1 not in shape:
        return tuple(shape)
    known = 1
    for dim in shape:
        if dim != -1:
            known *= dim
    return tuple(size // max(1, known) if dim == -1 else dim
                 for dim in shape)


class Tensor:
    """A NumPy array with reverse-mode autograd and an optional lazy graph.

    Attributes:
        data: the underlying :class:`numpy.ndarray` (reading it realizes
            any pending lazy graph).
        requires_grad: whether gradients flow to this tensor.
        grad: accumulated gradient after :meth:`backward`, or ``None``.
        name: optional label for debugging and parameter registration.
    """

    __slots__ = ("_data", "_lazy", "requires_grad", "_grad", "name",
                 "_backward_fn", "_parents", "__weakref__")

    def __init__(self, data, *, requires_grad: bool = False,
                 name: str | None = None, dtype=None):
        self._data = _as_array(data, dtype)
        self._lazy: LazyOp | None = None
        self.requires_grad = bool(requires_grad)
        self._grad: Tensor | None = None
        self.name = name
        self._backward_fn: Callable[["Tensor"], None] | None = None
        self._parents: tuple[Tensor, ...] = ()

    # ---------------------------------------------------------- construction
    @classmethod
    def _blank(cls) -> "Tensor":
        out = object.__new__(cls)
        out._data = None
        out._lazy = None
        out.requires_grad = False
        out._grad = None
        out.name = None
        out._backward_fn = None
        out._parents = ()
        return out

    @classmethod
    def _wrap(cls, array: np.ndarray) -> "Tensor":
        """Front an already-computed array (no cast, no copy)."""
        out = cls._blank()
        out._data = array
        return out

    @classmethod
    def _from_node(cls, node: LazyOp) -> "Tensor":
        """Front an unrealized graph node."""
        out = cls._blank()
        out._lazy = node
        node.set_owner(out)
        return out

    # ------------------------------------------------------------ properties
    @property
    def data(self) -> np.ndarray:
        if self._data is None:
            from repro.tensor import schedule
            schedule.realize_tensors(self)
        return self._data

    @data.setter
    def data(self, value) -> None:
        # Assignments (optimizer updates, load_state_dict) replace the
        # buffer; drop the stale graph node so future ops re-wrap it.
        self._data = value
        self._lazy = None

    def _set_realized(self, array: np.ndarray) -> None:
        """Scheduler callback: attach the executed output array."""
        self._data = array

    def _node(self) -> LazyOp:
        """This tensor as a graph node (wrapping realized data if needed)."""
        if self._lazy is None:
            self._lazy = lazy.buffer(self._data)
            self._lazy.set_owner(self)
        return self._lazy

    @property
    def grad(self) -> np.ndarray | None:
        return None if self._grad is None else self._grad.data

    @grad.setter
    def grad(self, value) -> None:
        if value is None:
            self._grad = None
        elif isinstance(value, Tensor):
            self._grad = value
        else:
            self._grad = Tensor._wrap(np.asarray(value))

    @property
    def shape(self) -> tuple[int, ...]:
        return self._data.shape if self._data is not None else self._lazy.shape

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) if self.shape else 1

    @property
    def dtype(self):
        return (self._data.dtype if self._data is not None
                else np.dtype(self._lazy.dtype))

    @property
    def is_realized(self) -> bool:
        """Whether the value is computed (always true on the eager path)."""
        return self._data is not None

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        state = "" if self.is_realized else ", lazy"
        return f"Tensor(shape={self.shape}{grad_flag}{label}{state})"

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.size == 1 else float(self.data)

    def numpy(self) -> np.ndarray:
        """The underlying array (not a copy; realizes if lazy)."""
        return self.data

    def detach(self) -> "Tensor":
        """A tensor sharing data but cut from the graph (realizes)."""
        return Tensor(self.data, requires_grad=False, name=self.name)

    def realize(self) -> "Tensor":
        """Force execution of any pending graph behind this tensor."""
        if self._data is None:
            from repro.tensor import schedule
            schedule.realize_tensors(self)
        return self

    # --------------------------------------------------------- graph plumbing
    @staticmethod
    def _op(kind: str, parents: tuple["Tensor", ...], compute: Callable,
            backward_fn: Callable[["Tensor"], None] | None = None, *,
            shape, dtype, record_shapes=None) -> "Tensor":
        """The single chokepoint every tensor op flows through.

        Eager mode runs ``compute`` now and records the executed op; lazy
        mode appends a graph node carrying the same ``compute`` for the
        scheduler.  ``shape``/``dtype`` are the inferred output metadata
        (authoritative in lazy mode; eager mode uses the actual array).
        """
        if lazy.is_lazy():
            node = LazyOp(kind, tuple(p._node() for p in parents),
                          shape, np.dtype(dtype), compute,
                          record_shapes=record_shapes)
            out = Tensor._from_node(node)
        else:
            arrays = [p._data if p._data is not None else p.data
                      for p in parents]
            out_data = compute(*arrays)
            shapes = (record_shapes if record_shapes is not None
                      else tuple(a.shape for a in arrays))
            recording.record(kind, *shapes, dtype=out_data.dtype,
                             out_shape=out_data.shape)
            out = Tensor._wrap(out_data)
        if (backward_fn is not None and _GRAD_ENABLED.get()
                and any(p.requires_grad for p in parents)):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward_fn = backward_fn
        return out

    @staticmethod
    def _make(data: np.ndarray, parents: Iterable["Tensor"],
              backward_fn: Callable[[np.ndarray], None]) -> "Tensor":
        """Eager-compat shim for old-style ops (ndarray-valued vjp)."""
        parents = tuple(parents)
        out = Tensor(data)
        if _GRAD_ENABLED.get() and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = parents
            out._backward_fn = lambda grad: backward_fn(grad.data)
        return out

    def _cast_grad(self) -> "Tensor":
        """Mirror ``_as_array``'s float64 fallback as a graph op."""
        def backward(grad: "Tensor") -> None:
            if self.requires_grad:
                self._accumulate(grad)
        return Tensor._op("cast", (self,),
                          lambda a: a.astype(np.float64, copy=False),
                          backward, shape=self.shape, dtype=np.float64)

    def _accumulate(self, grad) -> None:
        if not isinstance(grad, Tensor):
            grad = Tensor(grad)  # _as_array: non-f32/f64 input becomes f64
        elif grad.dtype not in (np.float32, np.float64):
            grad = grad._cast_grad()
        shape = self.shape
        if grad.shape != shape:
            while grad.ndim > len(shape):
                grad = grad.sum(axis=0)
            for axis, dim in enumerate(shape):
                if dim == 1 and grad.shape[axis] != 1:
                    grad = grad.sum(axis=axis, keepdims=True)
        if self._grad is None:
            self._grad = grad
        else:
            self._grad = self._grad + grad

    def backward(self, grad=None) -> None:
        """Backpropagate from this tensor.

        In lazy mode this *builds* the backward graph — gradients realize
        on first ``.grad`` access.  Eagerly it computes them immediately,
        numerically identical either way.

        Args:
            grad: upstream gradient; defaults to ones (and must be provided
                explicitly for non-scalar outputs only by choice — ones is
                used regardless, matching ``sum().backward()`` semantics).
        """
        if not self.requires_grad:
            raise RuntimeError("called backward on a tensor that does not "
                               "require grad")
        if grad is None:
            grad = Tensor(np.ones(self.shape, dtype=self.dtype))
        elif not isinstance(grad, Tensor):
            grad = Tensor(grad)

        with no_grad():
            self._accumulate(grad)

            ordered: list[Tensor] = []
            seen: set[int] = set()
            stack: list[tuple[Tensor, bool]] = [(self, False)]
            while stack:
                node, processed = stack.pop()
                if processed:
                    ordered.append(node)
                    continue
                if id(node) in seen:
                    continue
                seen.add(id(node))
                stack.append((node, True))
                for parent in node._parents:
                    if parent.requires_grad and id(parent) not in seen:
                        stack.append((parent, False))

            for node in reversed(ordered):
                if node._backward_fn is not None and node._grad is not None:
                    node._backward_fn(node._grad)
                    # Free the tape as we go; keeps memory bounded.
                    node._backward_fn = None
                    node._parents = ()

    def zero_grad(self) -> None:
        self._grad = None

    # ------------------------------------------------------------ arithmetic
    def _coerce(self, other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(
            _as_array(other, dtype=self.dtype))

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)

        def backward(grad: "Tensor") -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)
        return Tensor._op(
            "add", (self, other), lambda a, b: a + b, backward,
            shape=np.broadcast_shapes(self.shape, other.shape),
            dtype=np.result_type(self.dtype, other.dtype))

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: "Tensor") -> None:
            if self.requires_grad:
                self._accumulate(-grad)
        return Tensor._op("neg", (self,), lambda a: -a, backward,
                          shape=self.shape, dtype=self.dtype)

    def __sub__(self, other) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)

        def backward(grad: "Tensor") -> None:
            if self.requires_grad:
                self._accumulate(grad * other)
            if other.requires_grad:
                other._accumulate(grad * self)
        return Tensor._op(
            "mul", (self, other), lambda a, b: a * b, backward,
            shape=np.broadcast_shapes(self.shape, other.shape),
            dtype=np.result_type(self.dtype, other.dtype))

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)

        def backward(grad: "Tensor") -> None:
            if self.requires_grad:
                self._accumulate(grad / other)
            if other.requires_grad:
                other._accumulate(-grad * self / (other ** 2))
        return Tensor._op(
            "div", (self, other), lambda a, b: a / b, backward,
            shape=np.broadcast_shapes(self.shape, other.shape),
            dtype=np.result_type(self.dtype, other.dtype))

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")

        def backward(grad: "Tensor") -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self ** (exponent - 1))
        return Tensor._op(
            "pow", (self,), lambda a: a ** exponent, backward,
            shape=self.shape, dtype=np.result_type(self.dtype, exponent),
            record_shapes=(self.shape,))

    # ---------------------------------------------------------- matmul & co.
    def matmul(self, other: "Tensor") -> "Tensor":
        """(Batched) matrix multiplication with full broadcasting."""
        other = self._coerce(other)

        def backward(grad: "Tensor") -> None:
            if self.requires_grad:
                self._accumulate(Tensor._op(
                    "matmul_bwd_a", (grad, other),
                    lambda g, o: np.matmul(g, np.swapaxes(o, -1, -2)),
                    None,
                    shape=_matmul_shape(grad.shape,
                                        other.shape[:-2] + (other.shape[-1],
                                                            other.shape[-2])),
                    dtype=np.result_type(grad.dtype, other.dtype)))
            if other.requires_grad:
                other._accumulate(Tensor._op(
                    "matmul_bwd_b", (self, grad),
                    lambda s, g: np.matmul(np.swapaxes(s, -1, -2), g),
                    None,
                    shape=_matmul_shape(self.shape[:-2] + (self.shape[-1],
                                                           self.shape[-2]),
                                        grad.shape),
                    dtype=np.result_type(self.dtype, grad.dtype)))
        return Tensor._op(
            "matmul", (self, other), np.matmul, backward,
            shape=_matmul_shape(self.shape, other.shape),
            dtype=np.result_type(self.dtype, other.dtype))

    __matmul__ = matmul

    # ------------------------------------------------------------ elementwise
    def exp(self) -> "Tensor":
        def backward(grad: "Tensor") -> None:
            if self.requires_grad:
                self._accumulate(grad * out)
        out = Tensor._op("exp", (self,), np.exp, backward,
                         shape=self.shape, dtype=self.dtype)
        return out

    def log(self) -> "Tensor":
        def backward(grad: "Tensor") -> None:
            if self.requires_grad:
                self._accumulate(grad / self)
        return Tensor._op("log", (self,), np.log, backward,
                          shape=self.shape, dtype=self.dtype)

    def sqrt(self) -> "Tensor":
        def backward(grad: "Tensor") -> None:
            if self.requires_grad:
                self._accumulate(grad * 0.5 / out)
        out = Tensor._op("sqrt", (self,), np.sqrt, backward,
                         shape=self.shape, dtype=self.dtype)
        return out

    def tanh(self) -> "Tensor":
        def backward(grad: "Tensor") -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out ** 2))
        out = Tensor._op("tanh", (self,), np.tanh, backward,
                         shape=self.shape, dtype=self.dtype)
        return out

    def erf(self) -> "Tensor":
        from scipy.special import erf as _erf

        def backward(grad: "Tensor") -> None:
            if self.requires_grad:
                pdf = 2.0 / np.sqrt(np.pi) * (-(self ** 2)).exp()
                self._accumulate(grad * pdf)
        return Tensor._op("erf", (self,), _erf, backward, shape=self.shape,
                          dtype=np.result_type(self.dtype, np.float32))

    # ------------------------------------------------------------- reductions
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        shape = self.shape

        def compute(a: np.ndarray) -> np.ndarray:
            return a.sum(axis=axis, keepdims=keepdims)

        def expand(g: np.ndarray) -> np.ndarray:
            g = _as_array(g)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            return np.broadcast_to(g, shape)

        def backward(grad: "Tensor") -> None:
            if not self.requires_grad:
                return
            grad_dtype = (grad.dtype if grad.dtype in (np.float32, np.float64)
                          else np.dtype(np.float64))
            self._accumulate(Tensor._op(
                "sum_bwd", (grad,), expand, None,
                shape=shape, dtype=grad_dtype))
        return Tensor._op("sum", (self,), compute, backward,
                          shape=_reduced_shape(shape, axis, keepdims),
                          dtype=self.dtype)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        shape = self.shape
        count = (self.size if axis is None
                 else shape[axis] if isinstance(axis, int)
                 else int(np.prod([shape[a] for a in axis])))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        shape = self.shape

        def compute(a: np.ndarray) -> np.ndarray:
            return a.max(axis=axis, keepdims=keepdims)

        def grad_compute(g: np.ndarray, a: np.ndarray,
                         o: np.ndarray) -> np.ndarray:
            g = _as_array(g)
            expanded = o if keepdims else np.expand_dims(o, axis)
            mask = (a == expanded)
            # Split gradient between ties, matching subgradient convention.
            mask = mask / mask.sum(axis=axis, keepdims=True)
            if not keepdims:
                g = np.expand_dims(g, axis)
            return mask * g

        def backward(grad: "Tensor") -> None:
            if not self.requires_grad:
                return
            self._accumulate(Tensor._op(
                "max_bwd", (grad, self, out), grad_compute, None,
                shape=shape, dtype=np.float64))
        out = Tensor._op("max", (self,), compute, backward,
                         shape=_reduced_shape(shape, axis, keepdims),
                         dtype=self.dtype)
        return out

    # -------------------------------------------------------------- shape ops
    def reshape(self, *shape: int) -> "Tensor":
        in_shape = self.shape

        def backward(grad: "Tensor") -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(*in_shape))
        return Tensor._op("reshape", (self,),
                          lambda a: a.reshape(shape), backward,
                          shape=_reshape_shape(self.size, shape),
                          dtype=self.dtype)

    def transpose(self, *axes: int) -> "Tensor":
        axes = axes or tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes)
        in_shape = self.shape

        def backward(grad: "Tensor") -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(*inverse))
        return Tensor._op("transpose", (self,),
                          lambda a: a.transpose(axes), backward,
                          shape=tuple(in_shape[a] for a in axes),
                          dtype=self.dtype)

    def __getitem__(self, index) -> "Tensor":
        shape = self.shape

        def grad_compute(g: np.ndarray, a: np.ndarray) -> np.ndarray:
            full = np.zeros_like(a)
            np.add.at(full, index, g)
            return full

        def backward(grad: "Tensor") -> None:
            if self.requires_grad:
                self._accumulate(Tensor._op(
                    "getitem_bwd", (grad, self), grad_compute, None,
                    shape=shape, dtype=self.dtype))
        # Infer the output shape without materializing anything big: index
        # a zero-stride broadcast view and look at the result's shape.
        stub = np.broadcast_to(np.zeros(1, dtype=np.bool_), shape)[index]
        return Tensor._op("getitem", (self,), lambda a: a[index], backward,
                          shape=stub.shape, dtype=self.dtype,
                          record_shapes=(shape,))


def tensor(data, *, requires_grad: bool = False, dtype=None,
           name: str | None = None) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad, dtype=dtype, name=name)


def zeros(shape, *, requires_grad: bool = False, dtype=np.float32) -> Tensor:
    return Tensor(np.zeros(shape, dtype=dtype), requires_grad=requires_grad)


def ones(shape, *, requires_grad: bool = False, dtype=np.float32) -> Tensor:
    return Tensor(np.ones(shape, dtype=dtype), requires_grad=requires_grad)
