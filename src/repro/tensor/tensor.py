"""A small reverse-mode autograd engine over NumPy.

This is the executable substrate of the reproduction: enough of a tensor
library to express and *train* BERT end-to-end (matmul and batched matmul,
broadcasting elementwise arithmetic, reductions, shape ops), with gradients
checked against finite differences in the test suite.

Design notes:

* every differentiable op appends a node to an implicit tape via parent
  links; :meth:`Tensor.backward` runs a topological sweep;
* broadcasting is handled by summing gradients over broadcast axes
  (:func:`_unbroadcast`);
* an optional op recorder (:mod:`repro.tensor.recording`) observes every
  matmul so tests can cross-validate the analytic kernel trace against the
  shapes the model actually executes.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from repro.tensor import recording


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing broadcast axes."""
    if grad.shape == shape:
        return grad
    # Sum leading axes added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum axes that were size-1 in the original shape.
    for axis, dim in enumerate(shape):
        if dim == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


def _as_array(value, dtype=None) -> np.ndarray:
    array = np.asarray(value)
    if dtype is not None:
        array = array.astype(dtype, copy=False)
    elif array.dtype not in (np.float32, np.float64):
        array = array.astype(np.float64)
    return array


class Tensor:
    """A NumPy array with reverse-mode autograd.

    Attributes:
        data: the underlying :class:`numpy.ndarray`.
        requires_grad: whether gradients flow to this tensor.
        grad: accumulated gradient after :meth:`backward`, or ``None``.
        name: optional label for debugging and parameter registration.
    """

    __slots__ = ("data", "requires_grad", "grad", "name",
                 "_backward_fn", "_parents")

    def __init__(self, data, *, requires_grad: bool = False,
                 name: str | None = None, dtype=None):
        self.data = _as_array(data, dtype)
        self.requires_grad = bool(requires_grad)
        self.grad: np.ndarray | None = None
        self.name = name
        self._backward_fn: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()

    # ------------------------------------------------------------ properties
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}{grad_flag}{label})"

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.size == 1 else float(self.data)

    def numpy(self) -> np.ndarray:
        """The underlying array (not a copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """A tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False, name=self.name)

    # --------------------------------------------------------- graph plumbing
    @staticmethod
    def _make(data: np.ndarray, parents: Iterable["Tensor"],
              backward_fn: Callable[[np.ndarray], None]) -> "Tensor":
        parents = tuple(parents)
        out = Tensor(data)
        if any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = parents
            out._backward_fn = backward_fn
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(_as_array(grad), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad=None) -> None:
        """Backpropagate from this tensor.

        Args:
            grad: upstream gradient; defaults to ones (and must be provided
                explicitly for non-scalar outputs only by choice — ones is
                used regardless, matching ``sum().backward()`` semantics).
        """
        if not self.requires_grad:
            raise RuntimeError("called backward on a tensor that does not "
                               "require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        self._accumulate(grad)

        ordered: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                ordered.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in seen:
                    stack.append((parent, False))

        for node in reversed(ordered):
            if node._backward_fn is not None and node.grad is not None:
                node._backward_fn(node.grad)
                # Free the tape as we go; keeps memory bounded.
                node._backward_fn = None
                node._parents = ()

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------ arithmetic
    def _coerce(self, other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(
            _as_array(other, dtype=self.dtype))

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        recording.record("add", self.shape, other.shape)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)
        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)
        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        recording.record("mul", self.shape, other.shape)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)
        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data ** 2))
        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))
        return Tensor._make(out_data, (self,), backward)

    # ---------------------------------------------------------- matmul & co.
    def matmul(self, other: "Tensor") -> "Tensor":
        """(Batched) matrix multiplication with full broadcasting."""
        other = self._coerce(other)
        recording.record("matmul", self.shape, other.shape)
        out_data = np.matmul(self.data, other.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.matmul(grad, np.swapaxes(other.data, -1, -2)))
            if other.requires_grad:
                other._accumulate(np.matmul(np.swapaxes(self.data, -1, -2), grad))
        return Tensor._make(out_data, (self, other), backward)

    __matmul__ = matmul

    # ------------------------------------------------------------ elementwise
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)
        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)
        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * 0.5 / out_data)
        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data ** 2))
        return Tensor._make(out_data, (self,), backward)

    def erf(self) -> "Tensor":
        from scipy.special import erf as _erf
        out_data = _erf(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                pdf = 2.0 / np.sqrt(np.pi) * np.exp(-self.data ** 2)
                self._accumulate(grad * pdf)
        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------- reductions
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = _as_array(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))
        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        count = (self.size if axis is None
                 else self.data.shape[axis] if isinstance(axis, int)
                 else int(np.prod([self.data.shape[a] for a in axis])))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = _as_array(grad)
            expanded = out_data if keepdims else np.expand_dims(out_data, axis)
            mask = (self.data == expanded)
            # Split gradient between ties, matching subgradient convention.
            mask = mask / mask.sum(axis=axis, keepdims=True)
            if not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(mask * g)
        return Tensor._make(out_data, (self,), backward)

    # -------------------------------------------------------------- shape ops
    def reshape(self, *shape: int) -> "Tensor":
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(self.data.shape))
        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes = axes or tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes)
        out_data = self.data.transpose(axes)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))
        return Tensor._make(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)
        return Tensor._make(out_data, (self,), backward)


def tensor(data, *, requires_grad: bool = False, dtype=None,
           name: str | None = None) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad, dtype=dtype, name=name)


def zeros(shape, *, requires_grad: bool = False, dtype=np.float32) -> Tensor:
    return Tensor(np.zeros(shape, dtype=dtype), requires_grad=requires_grad)


def ones(shape, *, requires_grad: bool = False, dtype=np.float32) -> Tensor:
    return Tensor(np.ones(shape, dtype=dtype), requires_grad=requires_grad)
