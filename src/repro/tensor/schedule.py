"""Scheduler for the lazy tensor graph: linearize, validate, realize.

The scheduler turns a set of requested outputs into a deterministic list
of realize-items (the *schedule*), executes their NumPy kernels in order,
and recycles intermediate buffers whose every consumer has run.  The same
schedule object is what :mod:`repro.trace.lowerer` maps 1:1 into
:class:`~repro.trace.kernel_table.KernelTable` rows — execution and
tracing share one linearization.

Guarantees:

* **Deterministic order.**  Nodes are executed in ``nid`` order, which is
  construction order and therefore a valid topological order (sources are
  always constructed first).  Two identical programs build identical
  schedules.
* **No double realize.**  A node whose ``realized`` buffer is already set
  is never re-executed; :func:`execute` raises if forced.
* **Buffer reuse.**  After a node's last constructed consumer executes,
  its array is dropped unless a live :class:`~repro.tensor.tensor.Tensor`
  still fronts it (that tensor could mint new consumers later, or the
  caller may read ``.data``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tensor import recording
from repro.tensor.lazy import LazyOp


class ScheduleError(RuntimeError):
    """A structurally invalid schedule (cycle, missing source, replay)."""


@dataclass
class ScheduleReport:
    """What one :func:`realize` call did.

    Attributes:
        executed: op nodes executed, in order (the realized schedule).
        freed: intermediate arrays dropped by consumer refcounting.
        peak_live_bytes: high-water mark of realized intermediate bytes.
    """

    executed: list[LazyOp] = field(default_factory=list)
    freed: int = 0
    peak_live_bytes: int = 0


def linearize(roots) -> list[LazyOp]:
    """The deterministic schedule realizing every node in ``roots``.

    Collects the unrealized op nodes reachable from ``roots`` (realized
    nodes and buffers are data sources, not work) and orders them by
    ``nid`` — construction order, which is a topological order.
    """
    seen: set[int] = set()
    pending: list[LazyOp] = []
    stack = [r for r in roots if r is not None]
    while stack:
        node = stack.pop()
        if node.nid in seen:
            continue
        seen.add(node.nid)
        if node.realized is not None:
            continue
        if not node.is_buffer:
            pending.append(node)
        stack.extend(node.srcs)
    pending.sort(key=lambda n: n.nid)
    return pending


def validate_schedule(schedule: list[LazyOp], *,
                      require_nid_order: bool = True) -> None:
    """Raise :class:`ScheduleError` unless ``schedule`` is executable.

    Checks acyclicity / source-before-use (every source of an item is
    either realized, a buffer, or an earlier item), strictly increasing
    deterministic order, and that no item appears twice or is already
    realized (double-realize).

    Args:
        schedule: the realize-items, in execution order.
        require_nid_order: schedules produced by :func:`linearize` are in
            strictly increasing ``nid`` order; schedule *rewrites*
            (checkpoint replays, fused chains) insert freshly-minted nodes
            mid-stream, so they validate with this check off — the
            source-before-use check still guarantees executability.
    """
    position: dict[int, int] = {}
    last_nid = -1
    for index, node in enumerate(schedule):
        if node.nid in position:
            raise ScheduleError(f"node {node.nid} scheduled twice")
        if require_nid_order and node.nid <= last_nid:
            raise ScheduleError(
                f"schedule order is not deterministic: nid {node.nid} "
                f"after {last_nid}")
        last_nid = node.nid
        if node.realized is not None:
            raise ScheduleError(
                f"node {node.nid} ({node.kind}) is already realized")
        if node.is_buffer or node.compute is None:
            raise ScheduleError(
                f"node {node.nid} ({node.kind}) is not executable")
        for src in node.srcs:
            if src.realized is not None or src.is_buffer:
                continue
            if src.nid not in position:
                raise ScheduleError(
                    f"node {node.nid} ({node.kind}) uses source {src.nid} "
                    f"({src.kind}) that is neither realized nor scheduled "
                    f"earlier — cycle or missing root")
        position[node.nid] = index


def _src_array(src: LazyOp):
    if src.realized is None:
        if src.is_buffer and src.compute is not None:
            # Deferred buffer: allocate on first (and only) use.
            src.realized = src.compute()
        else:
            raise ScheduleError(
                f"source {src.nid} ({src.kind}) executed out of order")
    return src.realized


def execute(node: LazyOp):
    """Run one schedule item; returns its output array.

    Recording happens here — at realize, not at graph build — so captures
    through the lazy path observe what actually executed.
    """
    if node.realized is not None:
        raise ScheduleError(
            f"double realize of node {node.nid} ({node.kind})")
    args = [_src_array(src) for src in node.srcs]
    out = node.compute(*args)
    node.realized = out
    owner = node.owner() if node.owner is not None else None
    if owner is not None:
        owner._set_realized(out)
    shapes = node.record_shapes
    if shapes is None:
        shapes = tuple(src.shape for src in node.srcs)
    recording.record(node.kind, *shapes,
                     dtype=getattr(out, "dtype", None),
                     out_shape=getattr(out, "shape", None))
    return out


def realize(roots, *, report: bool = False):
    """Execute every unrealized node reachable from ``roots``.

    Args:
        roots: iterable of :class:`LazyOp` nodes (or ``None`` entries).
        report: also return a :class:`ScheduleReport` with the executed
            schedule and buffer-reuse statistics.
    """
    schedule = linearize(roots)
    stats = ScheduleReport()
    live_bytes = 0
    for node in schedule:
        out = execute(node)
        stats.executed.append(node)
        nbytes = getattr(out, "nbytes", 0)
        live_bytes += nbytes
        stats.peak_live_bytes = max(stats.peak_live_bytes, live_bytes)
        for src in node.srcs:
            src._pending -= 1
            if (src._pending <= 0 and src.realized is not None
                    and not src.owner_alive() and not src.is_buffer):
                live_bytes -= getattr(src.realized, "nbytes", 0)
                src.realized = None
                stats.freed += 1
    if report:
        return stats
    return None


def realize_tensors(*tensors) -> None:
    """Realize the graphs behind ``tensors`` (used by ``Tensor.data``)."""
    roots = [t._lazy for t in tensors if t._lazy is not None]
    if roots:
        realize(roots)
