"""NumPy reverse-mode autograd tensor library (the executable substrate)."""

from repro.tensor import functional, recording
from repro.tensor.module import (Dropout, Embedding, LayerNorm, Linear,
                                 Module, Parameter)
from repro.tensor.tensor import Tensor, ones, tensor, zeros

__all__ = [
    "Dropout", "Embedding", "LayerNorm", "Linear", "Module", "Parameter",
    "Tensor", "functional", "ones", "recording", "tensor", "zeros",
]
