"""NumPy reverse-mode autograd tensor library (the executable substrate)."""

from repro.tensor import functional, lazy, recording, schedule
from repro.tensor.lazy import LazyOp, is_lazy, lazy_mode
from repro.tensor.module import (Dropout, Embedding, LayerNorm, Linear,
                                 Module, Parameter)
from repro.tensor.tensor import Tensor, no_grad, ones, tensor, zeros

__all__ = [
    "Dropout", "Embedding", "LayerNorm", "LazyOp", "Linear", "Module",
    "Parameter", "Tensor", "functional", "is_lazy", "lazy", "lazy_mode",
    "no_grad", "ones", "recording", "schedule", "tensor", "zeros",
]
