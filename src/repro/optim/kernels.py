"""Optimizer kernel emission: LAMB, Adam and SGD update phases.

The paper identifies the optimizer update as the second-highest contributor
to BERT's training time (Takeaway 1) and studies its fusion behavior
(Fig. 12).  This module enumerates the kernels of the update phase in both
forms:

* **fused** — the production form the paper profiles: LAMB fused per layer
  group into ``LAMBStage1``/``LAMBStage2`` kernels (Apex style, Sec. 3.2.3),
  Adam fused via multi-tensor-apply batches;
* **unfused** — one kernel per elementwise step per parameter tensor, the
  eager form Fig. 12 compares against.

Byte accounting is exact per the algorithms: LAMB stage 1 reads the
gradient, momentum, velocity and parameter tensors (the "4x the model size"
of Takeaway 7) and writes momentum, velocity and the update; stage 2 reads
the update and parameter and writes the parameter.
"""

from __future__ import annotations

import math

from repro.config import Precision
from repro.ops.base import (AccessPattern, Component, DType, Kernel, OpClass,
                            Phase, Region)
from repro.ops.elementwise import elementwise
from repro.ops.reduction import global_l2_norm
from repro.trace.parameters import ParamTensor, group_by_layer

#: Tensors per multi-tensor-apply launch for fused Adam.  Apex batches
#: tensor lists into fixed-capacity kernel-argument blocks; with BERT
#: Large's ~400 parameter tensors this yields a few dozen launches, i.e. the
#: ~250x kernel-count gap vs. the unfused form that Fig. 12(a) reports.
MULTI_TENSOR_BATCH = 16

#: Unfused elementwise decompositions: (step name, input tensors, output
#: tensors, flops per element).  Intermediates are materialized to device
#: memory between kernels — the duplicate traffic fusion removes.
_LAMB_STAGE1_STEPS = (
    ("m_scale", 1, 1, 1.0), ("g_scale", 1, 1, 1.0), ("m_add", 2, 1, 1.0),
    ("g_square", 1, 1, 1.0), ("v_scale", 1, 1, 1.0), ("g2_scale", 1, 1, 1.0),
    ("v_add", 2, 1, 1.0), ("m_hat", 1, 1, 1.0), ("v_hat", 1, 1, 1.0),
    ("v_sqrt", 1, 1, 2.0), ("v_eps", 1, 1, 1.0), ("update_div", 2, 1, 4.0),
    ("decay_scale", 1, 1, 1.0), ("decay_add", 2, 1, 1.0),
)
_LAMB_STAGE2_STEPS = (
    ("trust_scale", 1, 1, 1.0), ("p_sub", 2, 1, 1.0),
)
#: Eager Adam decomposition: non-in-place elementwise steps, each writing a
#: fresh temporary (the pre-multi-tensor framework behavior Fig. 12(a)
#: compares against).  Bias correction materializes corrected moments, and
#: the combine steps read multiple operands.
_ADAM_STAGE1_STEPS = (
    ("m_scale", 1, 1, 1.0), ("g_scale", 1, 1, 1.0), ("m_add", 2, 1, 1.0),
    ("g_square", 2, 1, 1.0), ("v_scale", 1, 1, 1.0), ("g2_scale", 1, 1, 1.0),
    ("v_add", 2, 1, 1.0), ("m_hat", 2, 1, 1.0), ("v_hat", 2, 1, 1.0),
    ("v_sqrt", 1, 1, 2.0), ("denom_div", 2, 1, 1.0), ("v_eps", 1, 1, 1.0),
    ("update_div", 2, 1, 4.0),
    ("m_copyback", 1, 1, 0.0), ("v_copyback", 1, 1, 0.0),
)
_ADAM_STAGE2_STEPS = (("lr_scale", 1, 1, 1.0), ("p_sub", 2, 1, 1.0))

#: Per-element cost of the fused stage kernels (arithmetic of all the steps
#: above executed in-register).
_STAGE1_FLOPS_PER_ELEMENT = 19.0
_STAGE2_FLOPS_PER_ELEMENT = 3.0


def _fused_stage_kernel(name: str, *, n_elements: int, region: Region,
                        reads: int, writes: int,
                        flops_per_element: float) -> Kernel:
    """One fused optimizer stage kernel over a tensor group."""
    element_bytes = DType.FP32.bytes  # optimizer state is FP32 (Sec. 2.4)
    return Kernel(
        name=name, op_class=OpClass.ELEMENTWISE, phase=Phase.OPTIMIZER,
        component=Component.OPTIMIZER, region=region,
        flops=int(flops_per_element * n_elements),
        bytes_read=reads * n_elements * element_bytes,
        bytes_written=writes * n_elements * element_bytes,
        dtype=DType.FP32, access=AccessPattern.MULTI_TENSOR,
        n_elements=n_elements,
    )


def _precision_cast_kernels(total_elements: int,
                            precision: Precision) -> list[Kernel]:
    """Mixed-precision glue around the FP32 optimizer.

    Unscale+cast the FP16 gradients to FP32 before the update, and cast the
    updated FP32 master weights back to the FP16 model copy afterwards.
    These kernels exist only under mixed precision; LAMB itself is
    unchanged, which is why its absolute runtime stays constant (Takeaway 2).
    """
    if precision is not Precision.MIXED:
        return []
    fp16, fp32 = DType.FP16.bytes, DType.FP32.bytes
    return [
        Kernel(name="optimizer.grad_unscale_cast",
               op_class=OpClass.ELEMENTWISE, phase=Phase.OPTIMIZER,
               component=Component.OPTIMIZER, region=Region.OPT_STAGE1,
               flops=2 * total_elements,
               bytes_read=total_elements * fp16,
               bytes_written=total_elements * fp32,
               dtype=DType.FP32, access=AccessPattern.MULTI_TENSOR),
        Kernel(name="optimizer.weight_cast_back",
               op_class=OpClass.ELEMENTWISE, phase=Phase.OPTIMIZER,
               component=Component.OPTIMIZER, region=Region.OPT_STAGE2,
               flops=total_elements,
               bytes_read=total_elements * fp32,
               bytes_written=total_elements * fp16,
               dtype=DType.FP32, access=AccessPattern.MULTI_TENSOR),
    ]


def _unfused_step_kernels(tensor: ParamTensor, steps, region: Region,
                          name_prefix: str) -> list[Kernel]:
    """One kernel per elementwise step over one parameter tensor."""
    kernels = []
    for step, reads, writes, flops in steps:
        kernels.append(elementwise(
            f"{name_prefix}.{tensor.name}.{step}",
            n_elements=tensor.n_elements, dtype=DType.FP32,
            phase=Phase.OPTIMIZER, component=Component.OPTIMIZER,
            region=region, inputs=reads, outputs=writes,
            flops_per_element=flops, access=AccessPattern.MULTI_TENSOR,
        ))
    return kernels


def lamb_kernels(inventory: list[ParamTensor], *,
                 precision: Precision = Precision.FP32,
                 fused: bool = True) -> list[Kernel]:
    """Update-phase kernels of the LAMB optimizer.

    Structure follows Sec. 2.4 / 3.2.3: a global L2-norm over all gradients
    (serializing the update against the whole backprop), then per layer
    group a stage-1 kernel (momentum/velocity update, update direction,
    trust-ratio norms) and a stage-2 kernel (scaled weight update).

    Args:
        inventory: parameter tensors (see
            :func:`repro.trace.parameters.bert_parameter_inventory`).
        precision: adds gradient-cast / weight-cast kernels under mixed
            precision; the LAMB stages themselves always run FP32.
        fused: emit per-layer-group fused stage kernels (the paper's
            baseline) or the per-tensor-per-step eager decomposition.
    """
    total = sum(t.n_elements for t in inventory)
    kernels: list[Kernel] = _precision_cast_kernels(total, precision)
    kernels.append(global_l2_norm("lamb.global_grad_norm", n_elements=total,
                                  dtype=DType.FP32))

    groups = group_by_layer(inventory)
    if fused:
        for group_name, tensors in groups.items():
            n = sum(t.n_elements for t in tensors)
            kernels.append(_fused_stage_kernel(
                f"lamb.stage1.{group_name}", n_elements=n,
                region=Region.OPT_STAGE1, reads=4, writes=3,
                flops_per_element=_STAGE1_FLOPS_PER_ELEMENT))
            kernels.append(_fused_stage_kernel(
                f"lamb.stage2.{group_name}", n_elements=n,
                region=Region.OPT_STAGE2, reads=2, writes=1,
                flops_per_element=_STAGE2_FLOPS_PER_ELEMENT))
    else:
        for tensor in inventory:
            kernels.extend(_unfused_step_kernels(
                tensor, _LAMB_STAGE1_STEPS, Region.OPT_STAGE1,
                "lamb.unfused.stage1"))
            # Per-tensor trust-ratio norms (||p|| and ||update||).
            for norm_of in ("param", "update"):
                kernels.append(global_l2_norm(
                    f"lamb.unfused.norm_{norm_of}.{tensor.name}",
                    n_elements=tensor.n_elements, dtype=DType.FP32))
            kernels.extend(_unfused_step_kernels(
                tensor, _LAMB_STAGE2_STEPS, Region.OPT_STAGE2,
                "lamb.unfused.stage2"))
    return kernels


def adam_kernels(inventory: list[ParamTensor], *,
                 precision: Precision = Precision.FP32,
                 fused: bool = True) -> list[Kernel]:
    """Update-phase kernels of Adam (the Fig. 12 fusion subject).

    Fused Adam uses multi-tensor-apply: parameter tensors are batched
    :data:`MULTI_TENSOR_BATCH` at a time into single kernels.  Unfused Adam
    launches one kernel per elementwise step per tensor — the ~250x
    kernel-count gap of Fig. 12(a), with only a ~6-8x traffic gap because
    different tensors' data is independent and gains nothing from being in
    one launch.
    """
    total = sum(t.n_elements for t in inventory)
    kernels: list[Kernel] = _precision_cast_kernels(total, precision)

    if fused:
        n_batches = math.ceil(len(inventory) / MULTI_TENSOR_BATCH)
        for batch_index in range(n_batches):
            tensors = inventory[batch_index * MULTI_TENSOR_BATCH:
                                (batch_index + 1) * MULTI_TENSOR_BATCH]
            n = sum(t.n_elements for t in tensors)
            kernels.append(_fused_stage_kernel(
                f"adam.fused.batch{batch_index}", n_elements=n,
                region=Region.OPT_STAGE1, reads=4, writes=3,
                flops_per_element=_STAGE1_FLOPS_PER_ELEMENT))
    else:
        for tensor in inventory:
            kernels.extend(_unfused_step_kernels(
                tensor, _ADAM_STAGE1_STEPS, Region.OPT_STAGE1,
                "adam.unfused"))
            kernels.extend(_unfused_step_kernels(
                tensor, _ADAM_STAGE2_STEPS, Region.OPT_STAGE2,
                "adam.unfused"))
    return kernels


def sgd_kernels(inventory: list[ParamTensor], *,
                precision: Precision = Precision.FP32,
                fused: bool = True) -> list[Kernel]:
    """Update-phase kernels of SGD with momentum (baseline optimizer)."""
    total = sum(t.n_elements for t in inventory)
    kernels: list[Kernel] = _precision_cast_kernels(total, precision)
    if fused:
        kernels.append(_fused_stage_kernel(
            "sgd.fused", n_elements=total, region=Region.OPT_STAGE1,
            reads=3, writes=2, flops_per_element=4.0))
    else:
        steps = (("m_scale", 1, 1, 1.0), ("m_add", 2, 1, 1.0),
                 ("lr_scale", 1, 1, 1.0), ("p_sub", 2, 1, 1.0))
        for tensor in inventory:
            kernels.extend(_unfused_step_kernels(
                tensor, steps, Region.OPT_STAGE1, "sgd.unfused"))
    return kernels


def optimizer_kernels(name: str, inventory: list[ParamTensor], *,
                      precision: Precision = Precision.FP32,
                      fused: bool = True) -> list[Kernel]:
    """Dispatch by optimizer name (``"lamb"``, ``"adam"``, ``"sgd"``)."""
    emitters = {"lamb": lamb_kernels, "adam": adam_kernels,
                "sgd": sgd_kernels}
    if name not in emitters:
        raise ValueError(f"unknown optimizer {name!r}")
    return emitters[name](inventory, precision=precision, fused=fused)
