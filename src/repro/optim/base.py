"""Optimizer base class over the autograd parameter system."""

from __future__ import annotations

import numpy as np

from repro.tensor.module import Parameter


class Optimizer:
    """Base optimizer: holds parameters and per-parameter state.

    Subclasses implement :meth:`_update` for a single parameter given its
    gradient and state dict.
    """

    def __init__(self, parameters, lr: float):
        self.parameters: list[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.step_count = 0
        self._state: list[dict[str, np.ndarray]] = [
            {} for _ in self.parameters]

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def global_grad_norm(self) -> float:
        """L2 norm across all gradients.

        For LAMB this reduction must complete before any parameter update
        can start, serializing the update phase against the whole backprop
        (Sec. 3.2.3).
        """
        total = 0.0
        for param in self.parameters:
            if param.grad is not None:
                total += float((param.grad.astype(np.float64) ** 2).sum())
        return float(np.sqrt(total))

    def step(self) -> None:
        """Apply one update to every parameter with a gradient."""
        self.step_count += 1
        for param, state in zip(self.parameters, self._state):
            if param.grad is None:
                continue
            self._update(param, param.grad, state)

    def _update(self, param: Parameter, grad: np.ndarray,
                state: dict[str, np.ndarray]) -> None:
        raise NotImplementedError
