"""The LAMB optimizer (You et al. [95], Algorithm 2).

Layer-wise Adaptive Moments for Batch training: Adam-style moment updates
followed by a per-parameter *trust ratio* that rescales the step by
``||p|| / ||update||``, enabling very large batch sizes.  Implemented in
the same two-stage structure the paper profiles (Sec. 3.2.3): stage 1
computes moments and the update direction, stage 2 applies the trust-scaled
step — and with an optional global gradient-norm clip whose all-gradient
reduction is the serialization point Takeaway 7 discusses.
"""

from __future__ import annotations

import numpy as np

from repro.optim.base import Optimizer
from repro.tensor.module import Parameter


class Lamb(Optimizer):
    """LAMB with bias correction, weight decay and trust-ratio clamping.

    Args:
        parameters: model parameters.
        lr: base learning rate.
        betas: moment decay rates ``(beta1, beta2)``.
        eps: denominator stabilizer.
        weight_decay: decoupled L2 coefficient added to the update.
        clip_global_norm: if set, rescale all gradients so their global L2
            norm is at most this value before any update.
        trust_clip: upper clamp on the trust ratio.
    """

    def __init__(self, parameters, lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-6, weight_decay: float = 0.01,
                 clip_global_norm: float | None = 1.0,
                 trust_clip: float = 10.0):
        super().__init__(parameters, lr)
        if not (0.0 <= betas[0] < 1.0 and 0.0 <= betas[1] < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.clip_global_norm = clip_global_norm
        self.trust_clip = trust_clip
        self._grad_scale = 1.0

    def step(self) -> None:
        # The global-norm reduction runs across *all* layers' gradients
        # before the first parameter can be touched (Sec. 3.2.3).
        if self.clip_global_norm is not None:
            norm = self.global_grad_norm()
            self._grad_scale = (self.clip_global_norm / norm
                                if norm > self.clip_global_norm else 1.0)
        super().step()

    def _stage1(self, param: Parameter, grad: np.ndarray,
                state: dict[str, np.ndarray]) -> tuple[np.ndarray, float]:
        """Moment update and update direction; returns (update, trust)."""
        beta1, beta2 = self.betas
        grad = grad * self._grad_scale
        if "m" not in state:
            state["m"] = np.zeros_like(param.data, dtype=np.float32)
            state["v"] = np.zeros_like(param.data, dtype=np.float32)
        m, v = state["m"], state["v"]
        m += (1.0 - beta1) * (grad - m)
        v += (1.0 - beta2) * (grad * grad - v)

        m_hat = m / (1.0 - beta1 ** self.step_count)
        v_hat = v / (1.0 - beta2 ** self.step_count)
        update = m_hat / (np.sqrt(v_hat) + self.eps)
        if self.weight_decay:
            update = update + self.weight_decay * param.data

        param_norm = float(np.linalg.norm(param.data))
        update_norm = float(np.linalg.norm(update))
        if param_norm > 0.0 and update_norm > 0.0:
            trust = min(param_norm / update_norm, self.trust_clip)
        else:
            trust = 1.0
        return update, trust

    def _update(self, param: Parameter, grad: np.ndarray,
                state: dict[str, np.ndarray]) -> None:
        update, trust = self._stage1(param, grad, state)
        # Stage 2: trust-scaled weight update.
        param.data -= (self.lr * trust) * update
