"""Optimizers: executable NumPy implementations and kernel-trace emission."""

from repro.optim.adam import Adam, Sgd
from repro.optim.base import Optimizer
from repro.optim.kernels import (MULTI_TENSOR_BATCH, adam_kernels,
                                 lamb_kernels, optimizer_kernels, sgd_kernels)
from repro.optim.lamb import Lamb

__all__ = [
    "Adam", "Lamb", "MULTI_TENSOR_BATCH", "Optimizer", "Sgd",
    "adam_kernels", "lamb_kernels", "optimizer_kernels", "sgd_kernels",
]
