"""Adam and AdamW optimizers (the Fig. 12 fusion-study subject)."""

from __future__ import annotations

import numpy as np

from repro.optim.base import Optimizer
from repro.tensor.module import Parameter


class Adam(Optimizer):
    """Adam with bias correction and optional decoupled weight decay.

    Args:
        parameters: model parameters.
        lr: learning rate.
        betas: moment decay rates.
        eps: denominator stabilizer.
        weight_decay: decoupled (AdamW-style) decay coefficient.
    """

    def __init__(self, parameters, lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        if not (0.0 <= betas[0] < 1.0 and 0.0 <= betas[1] < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay

    def _update(self, param: Parameter, grad: np.ndarray,
                state: dict[str, np.ndarray]) -> None:
        beta1, beta2 = self.betas
        if "m" not in state:
            state["m"] = np.zeros_like(param.data, dtype=np.float32)
            state["v"] = np.zeros_like(param.data, dtype=np.float32)
        m, v = state["m"], state["v"]
        m += (1.0 - beta1) * (grad - m)
        v += (1.0 - beta2) * (grad * grad - v)
        m_hat = m / (1.0 - beta1 ** self.step_count)
        v_hat = v / (1.0 - beta2 ** self.step_count)
        if self.weight_decay:
            param.data -= self.lr * self.weight_decay * param.data
        param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class Sgd(Optimizer):
    """SGD with classical momentum (baseline optimizer)."""

    def __init__(self, parameters, lr: float = 1e-2, momentum: float = 0.9):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum

    def _update(self, param: Parameter, grad: np.ndarray,
                state: dict[str, np.ndarray]) -> None:
        if "velocity" not in state:
            state["velocity"] = np.zeros_like(param.data, dtype=np.float32)
        velocity = state["velocity"]
        velocity *= self.momentum
        velocity += grad
        param.data -= self.lr * velocity
