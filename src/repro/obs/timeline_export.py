"""Chrome Trace Event / Perfetto export of simulated timelines.

The paper's raw artifacts are kernel tables and per-device timelines
(Sec. 3.1.4, Fig. 11); real profiling stacks inspect those interactively
in chrome://tracing or ui.perfetto.dev.  These exporters emit the standard
Trace Event JSON format (the ``{"traceEvents": [...]}`` object form) for
our simulated equivalents:

* :func:`profile_to_chrome_trace` — a :class:`~repro.profiler.profiler.
  Profile`'s kernel stream laid out on one virtual GPU track, one complete
  (``ph: "X"``) slice per kernel.  The trace is stream-serialized exactly
  as the timing model assumes, so slice ``ts``/``dur`` are the cumulative
  and per-kernel modeled times; summed slice durations equal
  ``Profile.total_time`` (in microseconds) to float precision.  Each slice
  carries phase / component / region / op-class / layer metadata in
  ``args`` plus an op-class color (``cname``), so Perfetto queries and the
  color legend reproduce the paper's hierarchical breakdowns.
* :func:`device_timelines_to_chrome_trace` — Fig. 11-style multi-device
  configurations, one process track per :class:`~repro.distributed.
  timeline.DeviceTimeline`, bucket slices in display order with the
  *exposed* communication slice explicit and flagged.
* :func:`collective_run_to_chrome_trace` — a simulated collective
  (:class:`~repro.distributed.simulator.CollectiveRun`): one thread track
  per sending rank, one slice per point-to-point transfer.
* :func:`spans_to_chrome_trace` — the tracer's own spans
  (:mod:`repro.obs.spans`), one thread track per Python thread.

Everything returns plain dicts; :func:`write_chrome_trace` serializes.
Timestamps are microseconds (the unit the format specifies).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # imported lazily at run time to keep obs dependency-free
    from repro.distributed.simulator import CollectiveRun
    from repro.distributed.timeline import DeviceTimeline
    from repro.profiler.profiler import Profile
    from repro.obs.spans import Span

#: Trace-viewer reserved color names per op class (the ``cname`` field).
#: Compute-dense classes get greens, memory-bound classes blues/yellows,
#: communication red — matching the mental model of the paper's figures.
OP_CLASS_COLORS = {
    "gemm": "thread_state_running",
    "batched_gemm": "thread_state_runnable",
    "elementwise": "thread_state_iowait",
    "reduction": "thread_state_unknown",
    "gather_scatter": "generic_work",
    "normalization": "rail_response",
    "optimizer": "rail_animation",
    "communication": "terrible",
}

#: Bucket colors of the multi-device export.
_BUCKET_COLORS = {
    "transformer": "thread_state_running",
    "dr_rc_ln_replicated": "rail_response",
    "output": "thread_state_runnable",
    "embedding": "generic_work",
    "optimizer": "rail_animation",
    "communication": "terrible",
}


def _metadata(pid: int, name: str, *, tid: int | None = None,
              sort_index: int | None = None) -> list[dict]:
    """Process/thread naming metadata events."""
    events: list[dict] = []
    if tid is None:
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "args": {"name": name}})
        if sort_index is not None:
            events.append({"name": "process_sort_index", "ph": "M",
                           "pid": pid, "tid": 0,
                           "args": {"sort_index": sort_index}})
    else:
        events.append({"name": "thread_name", "ph": "M", "pid": pid,
                       "tid": tid, "args": {"name": name}})
    return events


def profile_to_chrome_trace(profile: "Profile", *,
                            label: str = "simulated kernel stream",
                            pid: int = 0) -> dict:
    """One virtual GPU track: a complete slice per profiled kernel."""
    device = profile.device
    events = _metadata(pid, f"{device.name} (simulated)")
    events += _metadata(pid, label, tid=0)

    clock_us = 0.0
    for index, record in enumerate(profile.records):
        kernel = record.kernel
        duration_us = record.time_s * 1e6
        event = {
            "name": kernel.name,
            "cat": kernel.op_class.value,
            "ph": "X",
            "ts": clock_us,
            "dur": duration_us,
            "pid": pid,
            "tid": 0,
            "args": {
                "index": index,
                "op_class": kernel.op_class.value,
                "phase": kernel.phase.value,
                "component": kernel.component.value,
                "region": kernel.region.value,
                "layer": (-1 if kernel.layer_index is None
                          else kernel.layer_index),
                "dtype": kernel.dtype.label,
                "flops": kernel.flops,
                "bytes": kernel.bytes_total,
            },
        }
        color = OP_CLASS_COLORS.get(kernel.op_class.value)
        if color:
            event["cname"] = color
        if kernel.gemm is not None:
            event["args"]["gemm_shape"] = kernel.gemm.label
        if kernel.fusion_group is not None:
            event["args"]["fusion_group"] = kernel.fusion_group
        events.append(event)
        clock_us += duration_us

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro.obs.timeline_export",
            "device": device.name,
            "kernels": len(profile),
            "total_time_us": clock_us,
        },
    }


def device_timelines_to_chrome_trace(
        timelines: "Iterable[DeviceTimeline]") -> dict:
    """Fig. 11-style export: one process track per device configuration.

    Buckets are laid out sequentially in the display order of
    :data:`repro.distributed.timeline.BUCKET_ORDER`; the communication
    slice is *exposed* (un-overlapped) time and is flagged as such in its
    ``args`` so the paper's "communication cost is visible on the
    timeline" reading carries over.
    """
    from repro.distributed.timeline import BUCKET_ORDER

    events: list[dict] = []
    for pid, timeline in enumerate(timelines):
        events += _metadata(pid, timeline.label, sort_index=pid)
        events += _metadata(pid, "iteration", tid=0)
        clock_us = 0.0
        ordered = [b for b in BUCKET_ORDER if b in timeline.buckets]
        ordered += [b for b in timeline.buckets if b not in BUCKET_ORDER]
        for bucket in ordered:
            seconds = timeline.buckets[bucket]
            if seconds <= 0:
                continue
            duration_us = seconds * 1e6
            name = ("communication (exposed)" if bucket == "communication"
                    else bucket)
            event = {
                "name": name,
                "cat": "device-timeline",
                "ph": "X",
                "ts": clock_us,
                "dur": duration_us,
                "pid": pid,
                "tid": 0,
                "args": {
                    "bucket": bucket,
                    "devices": timeline.devices,
                    "per_device_batch": timeline.per_device_batch,
                    "fraction": timeline.fraction(bucket),
                    "exposed_communication": bucket == "communication",
                },
            }
            color = _BUCKET_COLORS.get(bucket)
            if color:
                event["cname"] = color
            events.append(event)
            clock_us += duration_us
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": {"exporter": "repro.obs.timeline_export",
                          "tracks": "one per device configuration"}}


def collective_run_to_chrome_trace(run: "CollectiveRun", *,
                                   pid: int = 0) -> dict:
    """A simulated collective: one thread track per sending rank."""
    events = _metadata(pid, f"{run.algorithm} ({run.devices} devices)")
    ranks = sorted({e.source for e in run.events})
    for rank in ranks:
        events += _metadata(pid, f"rank {rank} send", tid=rank)
    for transfer in run.events:
        events.append({
            "name": f"{transfer.source}->{transfer.destination}",
            "cat": "communication",
            "ph": "X",
            "ts": transfer.start_s * 1e6,
            "dur": (transfer.end_s - transfer.start_s) * 1e6,
            "pid": pid,
            "tid": transfer.source,
            "cname": "terrible",
            "args": {
                "step": transfer.step,
                "source": transfer.source,
                "destination": transfer.destination,
                "bytes": transfer.n_bytes,
            },
        })
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": {"exporter": "repro.obs.timeline_export",
                          "algorithm": run.algorithm,
                          "completion_us": run.completion_s * 1e6}}


def spans_to_chrome_trace(spans: "Iterable[Span]", *,
                          pid: int = 0) -> dict:
    """The tracer's own spans: one thread track per Python thread."""
    # Spans finish innermost-first; emit in start order so each track's
    # complete events are ts-monotonic as the format expects.
    spans = sorted(spans, key=lambda s: s.start_s)
    events = _metadata(pid, "repro span tracer")
    origin = min((s.start_s for s in spans), default=0.0)
    thread_ids = {s.thread_id for s in spans}
    tids = {thread: index for index, thread
            in enumerate(sorted(thread_ids))}
    for thread, tid in tids.items():
        events += _metadata(pid, f"thread {thread}", tid=tid)
    for record in spans:
        events.append({
            "name": record.name,
            "cat": record.category,
            "ph": "X",
            "ts": (record.start_s - origin) * 1e6,
            "dur": record.duration_s * 1e6,
            "pid": pid,
            "tid": tids[record.thread_id],
            "args": {"depth": record.depth, **record.attrs},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": {"exporter": "repro.obs.timeline_export",
                          "spans": len(spans)}}


def validate_chrome_trace(payload: dict) -> list[str]:
    """Schema-check a trace payload; returns a list of problems.

    Covers the invariants the test suite (and the CI smoke step) relies
    on: the object form with a ``traceEvents`` list; every event carries
    ``name``/``ph``/``pid``/``tid``; complete events carry non-negative
    numeric ``ts``/``dur``; and per ``(pid, tid)`` track the complete
    events are monotonic in ``ts``.
    """
    problems: list[str] = []
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    if not events:
        problems.append("traceEvents is empty")
    last_ts: dict[tuple, float] = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index} is not an object")
            continue
        for field in ("name", "ph", "pid", "tid"):
            if field not in event:
                problems.append(f"event {index} missing {field!r}")
        if event.get("ph") == "M":
            continue
        if event.get("ph") != "X":
            problems.append(f"event {index} has unexpected ph "
                            f"{event.get('ph')!r}")
            continue
        for field in ("ts", "dur"):
            value = event.get(field)
            if not isinstance(value, (int, float)) or value < 0:
                problems.append(
                    f"event {index} {field!r} not a non-negative number")
        track = (event.get("pid"), event.get("tid"))
        ts = event.get("ts")
        if isinstance(ts, (int, float)):
            if ts < last_ts.get(track, 0.0):
                problems.append(
                    f"event {index} ts {ts} not monotonic on track {track}")
            else:
                last_ts[track] = ts
    return problems


def write_chrome_trace(payload: dict, path: str) -> None:
    """Serialize a trace payload to ``path`` (Perfetto-loadable JSON)."""
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")
