"""Unified metrics registry: labeled counters, gauges and histograms.

Before this module, the repository's only run-time counters were the four
ad-hoc fields of :mod:`repro.runner.telemetry` plus the
:class:`~repro.runner.cache.CacheStats` dataclass — neither extensible nor
queryable by label.  The registry subsumes both: instrumented subsystems
(the result cache, the GEMM-time memo in :mod:`repro.hw.timing`,
``run_point``, the experiment executor) report into process-wide metrics,
and the run manifest stores a snapshot so ``repro stats`` can render hit
rates after the fact.  The legacy telemetry collector remains as a shim —
its ``record_point`` both feeds the nested per-experiment counters the
manifest schema already exposes *and* increments the registry.

Model (a deliberately small subset of the Prometheus vocabulary):

* :class:`Counter` — monotonically increasing totals (``inc``);
* :class:`Gauge` — last-written values (``set``);
* :class:`Histogram` — ``observe``\\ d distributions summarized as
  count/sum/min/max plus ``p50``/``p90``/``p99`` quantiles estimated
  from a bounded reservoir sample.

Each metric holds one value *per label set*: ``counter.inc(result="hit")``
and ``counter.inc(result="miss")`` are independent series of the same
metric.  Labels are serialized in sorted ``k=v,...`` form, so snapshots
are JSON-stable.  All operations are thread-safe (one registry lock), and
:meth:`MetricsRegistry.snapshot` / :func:`diff_snapshots` give the
executor cheap per-experiment deltas even though the registry itself is
process-global and monotonic.
"""

from __future__ import annotations

import random
import threading
import zlib

#: Snapshot key for the unlabeled series of a metric.
_NO_LABELS = ""


def _label_key(labels: dict[str, object]) -> str:
    """Serialize a label set to its stable snapshot key."""
    if not labels:
        return _NO_LABELS
    return ",".join(f"{k}={labels[k]}" for k in sorted(labels))


class _Metric:
    """Shared plumbing: a named family of label-keyed series."""

    kind = "metric"

    def __init__(self, name: str, help_text: str, lock: threading.Lock):
        self.name = name
        self.help = help_text
        self._lock = lock
        self._series: dict[str, object] = {}

    def snapshot(self) -> dict[str, object]:
        """Label key -> JSON-able value (taken under the registry lock).

        Label keys come out sorted, so snapshots (and everything rendered
        from them — ``repro stats``, ``/stats``, ``/metrics``) are stable
        for diffing and golden tests whatever the observation order was.
        """
        with self._lock:
            return {key: self._export(self._series[key])
                    for key in sorted(self._series)}

    @staticmethod
    def _export(value):
        return value


class Counter(_Metric):
    """A monotonically increasing total, optionally labeled."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0)


class Gauge(_Metric):
    """A point-in-time value, optionally labeled."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._series[_label_key(labels)] = value

    def value(self, **labels) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0)


#: Per-series reservoir size: percentiles are exact up to this many
#: observations and an unbiased random sample (Vitter's Algorithm R)
#: beyond it.  512 floats per series keeps snapshots small.
RESERVOIR_SIZE = 512

#: The quantiles every histogram summary reports.
QUANTILES = (("p50", 0.50), ("p90", 0.90), ("p99", 0.99))

#: Snapshot keys carried by a histogram summary, in render order.
HISTOGRAM_FIELDS = ("count", "sum", "min", "max") + \
    tuple(name for name, _ in QUANTILES)


def _quantile(ordered: list[float], q: float) -> float:
    """Linear-interpolated quantile of an already-sorted sample."""
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    weight = position - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


class Histogram(_Metric):
    """An observed distribution: count/sum/min/max plus quantiles.

    Quantiles come from a bounded reservoir per label set
    (:data:`RESERVOIR_SIZE` values, reservoir-sampled once full), so a
    series never grows with traffic yet ``p50``/``p90``/``p99`` stay
    exact for small series and statistically sound for large ones.

    Each series seeds its own :class:`random.Random` from the metric
    name + label key, so reservoir contents — and therefore quantile
    estimates past the reservoir size — are a pure function of the
    observation sequence.  Tests can assert quantiles exactly, and a
    re-run of the same workload reports the same percentiles; the old
    module-global ``random`` made both depend on everything else the
    process had sampled.
    """

    kind = "histogram"

    def _seed(self, key: str) -> int:
        return zlib.crc32(f"{self.name}|{key}".encode())

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            stats = self._series.get(key)
            if stats is None:
                self._series[key] = {"count": 1, "sum": value,
                                     "min": value, "max": value,
                                     "sample": [value],
                                     "rng": random.Random(self._seed(key))}
            else:
                stats["count"] += 1
                stats["sum"] += value
                stats["min"] = min(stats["min"], value)
                stats["max"] = max(stats["max"], value)
                sample = stats["sample"]
                if len(sample) < RESERVOIR_SIZE:
                    sample.append(value)
                else:  # Algorithm R: keep each value with p = size/count
                    slot = stats["rng"].randrange(stats["count"])
                    if slot < RESERVOIR_SIZE:
                        sample[slot] = value

    def stats(self, **labels) -> dict[str, float] | None:
        with self._lock:
            stats = self._series.get(_label_key(labels))
            return self._export(stats) if stats is not None else None

    @staticmethod
    def _export(value):
        out = {k: v for k, v in value.items()
               if k not in ("sample", "rng")}
        ordered = sorted(value["sample"])
        for name, q in QUANTILES:
            out[name] = _quantile(ordered, q)
        return out


class MetricsRegistry:
    """A process-wide family of named metrics.

    Re-requesting a name returns the existing metric; requesting it as a
    different kind raises, so two subsystems cannot silently fight over
    one name.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _get(self, kind: type[_Metric], name: str, help_text: str) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = kind(name, help_text, self._lock)
                self._metrics[name] = metric
        if not isinstance(metric, kind):
            raise TypeError(f"metric {name!r} already registered as "
                            f"{metric.kind}, not {kind.kind}")
        return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get(Gauge, name, help_text)

    def histogram(self, name: str, help_text: str = "") -> Histogram:
        return self._get(Histogram, name, help_text)

    def snapshot(self) -> dict[str, dict]:
        """JSON-able state of every metric: ``{name: {kind, series}}``.

        Metric names (and, per metric, label keys) come out sorted so
        every rendering downstream is byte-stable across runs.
        """
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        return {metric.name: {"kind": metric.kind,
                              "series": metric.snapshot()}
                for metric in metrics}

    def help_texts(self) -> dict[str, str]:
        """Registered help strings by metric name (Prometheus HELP lines)."""
        with self._lock:
            return {name: self._metrics[name].help
                    for name in sorted(self._metrics)
                    if self._metrics[name].help}

    def clear(self) -> None:
        """Drop every metric (tests)."""
        with self._lock:
            self._metrics.clear()


def diff_snapshots(before: dict[str, dict],
                   after: dict[str, dict]) -> dict[str, dict]:
    """What happened between two snapshots of the same registry.

    Counters and histogram count/sum diff; histogram min/max/quantiles
    and gauges take the ``after`` value (quantiles describe the whole
    series — they cannot be subtracted).  Metrics/series absent from
    ``before`` are treated as zero; series whose delta is zero are
    dropped, so an experiment's dict only names what it actually touched.
    """
    out: dict[str, dict] = {}
    for name, entry in after.items():
        kind = entry["kind"]
        old_series = before.get(name, {}).get("series", {})
        series: dict[str, object] = {}
        for key, value in entry["series"].items():
            old = old_series.get(key)
            if kind == "counter":
                delta = value - (old or 0)
                if delta:
                    series[key] = delta
            elif kind == "gauge":
                if old is None or value != old:
                    series[key] = value
            else:  # histogram
                old = old or {"count": 0, "sum": 0.0}
                if value["count"] - old["count"]:
                    delta = dict(value)
                    delta["count"] = value["count"] - old["count"]
                    delta["sum"] = value["sum"] - old["sum"]
                    series[key] = delta
        if series:
            out[name] = {"kind": kind, "series": series}
    return out


def merge_snapshots(snapshots: "list[dict[str, dict]]") -> dict[str, dict]:
    """Merge per-experiment metric deltas into one run-level snapshot.

    Counters and histogram count/sum add across snapshots; gauges keep the
    last write; histogram min/max widen.  Histogram quantiles cannot be
    merged exactly, so the merged series keeps the quantiles of its
    largest contributor (count-weighted approximation).
    """
    merged: dict[str, dict] = {}
    for snapshot in snapshots:
        for name, entry in snapshot.items():
            into = merged.setdefault(name, {"kind": entry["kind"],
                                            "series": {}})
            for key, value in entry["series"].items():
                old = into["series"].get(key)
                if entry["kind"] == "counter":
                    into["series"][key] = (old or 0) + value
                elif entry["kind"] == "gauge":
                    into["series"][key] = value
                elif old is None:
                    into["series"][key] = dict(value)
                else:
                    if value["count"] > old["count"]:
                        for name, _ in QUANTILES:
                            if name in value:
                                old[name] = value[name]
                    old["count"] += value["count"]
                    old["sum"] += value["sum"]
                    old["min"] = min(old["min"], value["min"])
                    old["max"] = max(old["max"], value["max"])
    return merged


def hit_rates(snapshot: dict[str, dict]) -> dict[str, float]:
    """Derived ``<metric>.hit_rate`` summaries from result-labeled counters.

    Any counter with ``result=hit`` / ``result=miss`` series (the result
    cache, the in-process ``run_point`` memo, the GEMM-time memo) yields a
    rate; metrics without traffic are omitted.
    """
    rates: dict[str, float] = {}
    for name, entry in snapshot.items():
        if entry["kind"] != "counter":
            continue
        series = entry["series"]
        hits = sum(v for k, v in series.items() if "result=hit" in k)
        misses = sum(v for k, v in series.items() if "result=miss" in k)
        if hits + misses:
            rates[f"{name}.hit_rate"] = round(hits / (hits + misses), 6)
    return rates


# The process-wide registry every instrumented module reports into.
_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _registry


def counter(name: str, help_text: str = "") -> Counter:
    """Shorthand for ``get_registry().counter(...)``."""
    return _registry.counter(name, help_text)


def gauge(name: str, help_text: str = "") -> Gauge:
    """Shorthand for ``get_registry().gauge(...)``."""
    return _registry.gauge(name, help_text)


def histogram(name: str, help_text: str = "") -> Histogram:
    """Shorthand for ``get_registry().histogram(...)``."""
    return _registry.histogram(name, help_text)
