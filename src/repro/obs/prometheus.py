"""Prometheus text exposition of the metrics registry.

The registry snapshot (:meth:`repro.obs.metrics.MetricsRegistry.snapshot`)
is the single source of truth for every metric in the process; this module
renders it in the Prometheus text exposition format (version 0.0.4) so a
standard scraper pointed at ``GET /metrics`` — or a human reading ``repro
stats --prom`` — sees the same counters, gauges and latency quantiles the
JSON ``/stats`` endpoint reports.

Mapping, stdlib-only on both ends:

* metric names are sanitized (``serve.request_seconds`` →
  ``serve_request_seconds``); **counters** gain the conventional
  ``_total`` suffix;
* label keys (the registry's sorted ``k=v,...`` strings) become
  ``{k="v",...}`` with proper escaping;
* **histograms** render as Prometheus *summaries*: one
  ``{quantile="0.5|0.9|0.99"}`` sample per reported percentile plus
  ``_sum`` and ``_count``, with the registry's min/max as two auxiliary
  gauge families (``<name>_min`` / ``<name>_max``).

Everything is emitted in sorted name order, one ``# TYPE`` (and optional
``# HELP``) line per family before its samples, so output is byte-stable
— ``scripts/check_prometheus.py`` validates a live scrape against
:func:`validate_exposition` in CI.
"""

from __future__ import annotations

import math
import re

#: Content-Type a compliant exposition response must declare.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Quantile label values for the registry's fixed percentile set.
_QUANTILE_LABELS = {"p50": "0.5", "p90": "0.9", "p99": "0.99"}

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")

#: One sample line: name, optional {labels}, value (validation regex).
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)(?: (?P<timestamp>-?\d+))?$")

_LABEL_PAIR = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def sanitize_metric_name(name: str) -> str:
    """A registry metric name as a legal Prometheus metric name."""
    sanitized = _SANITIZE.sub("_", name)
    if not sanitized or not _NAME_OK.match(sanitized):
        sanitized = "_" + sanitized
    return sanitized


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def parse_label_key(key: str) -> dict[str, str]:
    """The registry's sorted ``k=v,...`` label key as a dict."""
    if not key:
        return {}
    labels: dict[str, str] = {}
    for pair in key.split(","):
        name, _, value = pair.partition("=")
        labels[name] = value
    return labels


def format_labels(labels: dict[str, str]) -> str:
    """``{k="v",...}`` in sorted key order; empty string for no labels."""
    if not labels:
        return ""
    rendered = ",".join(
        f'{name}="{_escape_label_value(str(labels[name]))}"'
        for name in sorted(labels))
    return "{" + rendered + "}"


def _format_value(value) -> str:
    number = float(value)
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if math.isnan(number):
        return "NaN"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _family(lines: list[str], name: str, kind: str,
            help_text: str | None) -> None:
    if help_text:
        escaped = help_text.replace("\\", r"\\").replace("\n", r"\n")
        lines.append(f"# HELP {name} {escaped}")
    lines.append(f"# TYPE {name} {kind}")


def render_prometheus(snapshot: dict[str, dict],
                      help_texts: dict[str, str] | None = None) -> str:
    """Render a registry snapshot in Prometheus text exposition format.

    ``snapshot`` is :meth:`MetricsRegistry.snapshot` output (or the
    ``observability.metrics`` section of a run manifest — same shape).
    ``help_texts`` optionally maps registry metric names to ``# HELP``
    strings (:meth:`MetricsRegistry.help_texts`).
    """
    help_texts = help_texts or {}
    lines: list[str] = []
    for metric_name in sorted(snapshot):
        entry = snapshot[metric_name]
        kind = entry.get("kind", "untyped")
        series = entry.get("series", {})
        base = sanitize_metric_name(metric_name)
        help_text = help_texts.get(metric_name)

        if kind == "counter":
            _family(lines, f"{base}_total", "counter", help_text)
            for key in sorted(series):
                labels = format_labels(parse_label_key(key))
                lines.append(f"{base}_total{labels} "
                             f"{_format_value(series[key])}")
        elif kind == "gauge":
            _family(lines, base, "gauge", help_text)
            for key in sorted(series):
                labels = format_labels(parse_label_key(key))
                lines.append(f"{base}{labels} "
                             f"{_format_value(series[key])}")
        elif kind == "histogram":
            _family(lines, base, "summary", help_text)
            for key in sorted(series):
                stats = series[key]
                labels = parse_label_key(key)
                for field, quantile in _QUANTILE_LABELS.items():
                    if field not in stats:
                        continue
                    quantile_labels = format_labels(
                        {**labels, "quantile": quantile})
                    lines.append(f"{base}{quantile_labels} "
                                 f"{_format_value(stats[field])}")
                plain = format_labels(labels)
                lines.append(f"{base}_sum{plain} "
                             f"{_format_value(stats.get('sum', 0.0))}")
                lines.append(f"{base}_count{plain} "
                             f"{_format_value(stats.get('count', 0))}")
            for bound in ("min", "max"):
                _family(lines, f"{base}_{bound}", "gauge", None)
                for key in sorted(series):
                    stats = series[key]
                    if bound not in stats:
                        continue
                    plain = format_labels(parse_label_key(key))
                    lines.append(f"{base}_{bound}{plain} "
                                 f"{_format_value(stats[bound])}")
        else:
            _family(lines, base, "untyped", help_text)
            for key in sorted(series):
                labels = format_labels(parse_label_key(key))
                lines.append(f"{base}{labels} "
                             f"{_format_value(series[key])}")
    return "\n".join(lines) + "\n" if lines else ""


def render_registry(registry=None) -> str:
    """Exposition text of the live process-wide registry (``/metrics``)."""
    from repro.obs import metrics as metrics_module

    registry = registry if registry is not None \
        else metrics_module.get_registry()
    return render_prometheus(registry.snapshot(), registry.help_texts())


# --------------------------------------------------------------- validation
_VALID_TYPES = {"counter", "gauge", "summary", "histogram", "untyped"}


def _parse_float(text: str) -> float | None:
    if text in ("+Inf", "-Inf", "NaN"):
        return {"+Inf": math.inf, "-Inf": -math.inf,
                "NaN": math.nan}[text]
    try:
        return float(text)
    except ValueError:
        return None


def _family_of(sample_name: str, declared: dict[str, str]) -> str:
    """The declared family a sample belongs to (summary/histogram samples
    carry ``_sum``/``_count``/``_bucket`` suffixes)."""
    if sample_name in declared:
        return sample_name
    for suffix in ("_sum", "_count", "_bucket"):
        if sample_name.endswith(suffix):
            stem = sample_name[: -len(suffix)]
            if declared.get(stem) in ("summary", "histogram"):
                return stem
    return sample_name


def validate_exposition(text: str) -> list[str]:
    """Schema-check Prometheus exposition text; returns a problem list.

    Dependency-free (no ``prometheus_client``) but strict about the
    invariants a scraper relies on: sample-line grammar, legal metric
    and label names, parseable values, at most one ``# TYPE`` per family
    declared *before* its samples, families not interleaved, quantile
    labels within [0, 1], and summary ``_count`` consistency with the
    number of observations being non-negative.
    """
    problems: list[str] = []
    declared: dict[str, str] = {}
    finished: set[str] = set()
    current_family: str | None = None
    samples = 0

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 2 or parts[1] not in ("TYPE", "HELP"):
                continue  # free-form comment: legal, ignored
            if len(parts) < 3:
                problems.append(f"line {line_no}: bare # {parts[1]}")
                continue
            name = parts[2]
            if not _NAME_OK.match(name):
                problems.append(
                    f"line {line_no}: illegal metric name {name!r}")
                continue
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in _VALID_TYPES:
                    problems.append(
                        f"line {line_no}: bad TYPE for {name}")
                    continue
                if name in declared:
                    problems.append(
                        f"line {line_no}: duplicate TYPE for {name}")
                    continue
                if name in finished or name == current_family:
                    problems.append(
                        f"line {line_no}: TYPE for {name} after its "
                        "samples")
                declared[name] = parts[3]
            continue

        match = _SAMPLE_LINE.match(line)
        if match is None:
            problems.append(f"line {line_no}: unparseable sample {line!r}")
            continue
        samples += 1
        name = match.group("name")
        value = _parse_float(match.group("value"))
        if value is None:
            problems.append(
                f"line {line_no}: value {match.group('value')!r} "
                "is not a number")

        family = _family_of(name, declared)
        if family != current_family:
            if family in finished:
                problems.append(
                    f"line {line_no}: family {family} interleaved")
            if current_family is not None:
                finished.add(current_family)
            current_family = family

        labels_text = match.group("labels")
        if labels_text:
            consumed = _LABEL_PAIR.sub("", labels_text).replace(",", "")
            if consumed.strip():
                problems.append(
                    f"line {line_no}: malformed labels {{{labels_text}}}")
            for label_name, label_value in _LABEL_PAIR.findall(labels_text):
                if not _LABEL_OK.match(label_name):
                    problems.append(
                        f"line {line_no}: illegal label name "
                        f"{label_name!r}")
                if label_name == "quantile":
                    quantile = _parse_float(label_value)
                    if quantile is None or not 0.0 <= quantile <= 1.0:
                        problems.append(
                            f"line {line_no}: quantile {label_value!r} "
                            "outside [0, 1]")
        if (name.endswith("_count")
                and declared.get(family) in ("summary", "histogram")
                and isinstance(value, float) and value < 0):
            problems.append(f"line {line_no}: negative _count")
        if (declared.get(family) == "counter"
                and isinstance(value, float)
                and not math.isnan(value) and value < 0):
            problems.append(f"line {line_no}: negative counter {name}")

    if samples == 0:
        problems.append("no samples")
    return problems
