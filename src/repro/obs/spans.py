"""Span tracer: nested timing instrumentation of the simulator itself.

The paper's methodology is observability of *training*; this module is
observability of *the reproduction* — where does a ``repro run`` spend its
own wall-clock?  Hot paths (trace build, vectorized timing, breakdown
aggregation, cache traffic, experiment lifecycle) open a :func:`span`
around their work; when tracing is enabled, every span records its wall
time, nesting (parent/depth) and a few key=value attributes.

Design constraints, in priority order:

* **Near-zero cost when disabled.**  Spans wrap the hot paths of every
  experiment, so the disabled path is a single attribute check returning a
  shared no-op context manager — the acceptance gate is <= 5% overhead on
  ``benchmarks/bench_profile_engine.py``.
* **Thread safety.**  The active-span stack lives in ``threading.local``:
  spans opened on different threads nest independently (the same fix
  satellite work applies to :mod:`repro.runner.telemetry`).  The finished
  list is guarded by a lock.
* **Nestable and scoped.**  :meth:`SpanTracer.capture` bounds a recording
  scope (the executor opens one per experiment) and returns the spans
  finished inside it, so parallel workers each dump their own spans into
  their :class:`~repro.runner.executor.ExperimentResult`.

Spans are plain data afterwards: :func:`aggregate_spans` folds them into
the per-name summary stored in run manifests, and
:func:`repro.obs.timeline_export.spans_to_chrome_trace` lays the raw spans
out on a Perfetto-loadable timeline.
"""

from __future__ import annotations

import functools
import threading
import time
from dataclasses import dataclass, field


@dataclass
class Span:
    """One finished (or still open) span.

    Attributes:
        name: dotted span name, e.g. ``"timing.kernel_times"``.
        category: coarse grouping used as the Chrome-trace ``cat`` field.
        start_s: start timestamp (``time.perf_counter`` domain).
        end_s: end timestamp; equals ``start_s`` until the span closes.
        thread_id: ``threading.get_ident()`` of the opening thread.
        span_id: id unique within one tracer.
        parent_id: enclosing span's ``span_id``, or ``-1`` at the root.
        depth: nesting depth (root spans are 0).
        attrs: small JSON-able key=value payload.
    """

    name: str
    category: str = "repro"
    start_s: float = 0.0
    end_s: float = 0.0
    thread_id: int = 0
    span_id: int = 0
    parent_id: int = -1
    depth: int = 0
    attrs: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "category": self.category,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "thread_id": self.thread_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "attrs": dict(self.attrs),
        }


class _NoopSpan:
    """Shared do-nothing context manager for the tracing-disabled path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> None:
        return None


_NOOP = _NoopSpan()


class _ActiveSpan:
    """Context manager that closes one span on exit."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "SpanTracer", span: Span):
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, *exc_info) -> None:
        self._tracer._finish(self.span)


class SpanTracer:
    """A collector of nested spans.

    Disabled by default; :meth:`capture` (or :meth:`enable`) turns it on.
    All mutating operations are thread-safe.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._finished: list[Span] = []
        self._enabled = False
        self._next_id = 0

    # ------------------------------------------------------------- lifecycle
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def reset(self) -> list[Span]:
        """Drain and return every finished span."""
        with self._lock:
            spans, self._finished = self._finished, []
        return spans

    # ---------------------------------------------------------------- spans
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, category: str = "repro", **attrs):
        """Open a span; use as ``with tracer.span("trace.build"): ...``.

        When tracing is disabled this returns a shared no-op context
        manager without allocating anything.
        """
        if not self._enabled:
            return _NOOP
        stack = self._stack()
        parent = stack[-1] if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        record = Span(
            name=name, category=category,
            start_s=time.perf_counter(), end_s=0.0,
            thread_id=threading.get_ident(), span_id=span_id,
            parent_id=parent.span_id if parent is not None else -1,
            depth=parent.depth + 1 if parent is not None else 0,
            attrs=attrs)
        stack.append(record)
        return _ActiveSpan(self, record)

    def _finish(self, span: Span) -> None:
        span.end_s = time.perf_counter()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # mis-nested exit (generator abandoned mid-span): drop it
            try:
                stack.remove(span)
            except ValueError:
                pass
        with self._lock:
            self._finished.append(span)

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def annotate(self, **attrs) -> None:
        """Attach attributes to the innermost open span (no-op outside)."""
        span = self.current()
        if span is not None:
            span.attrs.update(attrs)

    # -------------------------------------------------------------- scoping
    def capture(self) -> "_CaptureScope":
        """Enable tracing for a scope and collect the spans it finishes.

        Scopes may nest: inner scopes hand their spans to the outer scope
        as well, and tracing stays enabled until the outermost scope
        closes (if it was disabled before).
        """
        return _CaptureScope(self)


class _CaptureScope:
    """Context manager bounding one recording scope."""

    def __init__(self, tracer: SpanTracer):
        self._tracer = tracer
        self._was_enabled = False
        self._start_index = 0
        self.spans: list[Span] = []

    def __enter__(self) -> "_CaptureScope":
        self._was_enabled = self._tracer.enabled
        with self._tracer._lock:
            self._start_index = len(self._tracer._finished)
        self._tracer.enable()
        return self

    def __exit__(self, *exc_info) -> None:
        if not self._was_enabled:
            self._tracer.disable()
        with self._tracer._lock:
            self.spans = self._tracer._finished[self._start_index:]
            if not self._was_enabled:
                # Outermost scope: drain what it (and any inner scopes)
                # recorded so the next capture starts clean.
                del self._tracer._finished[self._start_index:]


# The process-wide tracer every instrumented module reports into.
_tracer = SpanTracer()


def get_tracer() -> SpanTracer:
    """The process-wide tracer instance."""
    return _tracer


def span(name: str, category: str = "repro", **attrs):
    """Open a span on the process-wide tracer (module-level convenience)."""
    if not _tracer._enabled:  # inlined fast path for the hot call sites
        return _NOOP
    return _tracer.span(name, category, **attrs)


def annotate(**attrs) -> None:
    """Attach attributes to the innermost open span, if tracing is on."""
    if _tracer._enabled:
        _tracer.annotate(**attrs)


def traced(name: str | None = None, category: str = "repro"):
    """Decorator tracing every call of a function as one span."""
    def decorate(function):
        span_name = name or f"{function.__module__}.{function.__qualname__}"

        @functools.wraps(function)
        def wrapper(*args, **kwargs):
            if not _tracer._enabled:
                return function(*args, **kwargs)
            with _tracer.span(span_name, category):
                return function(*args, **kwargs)
        return wrapper
    return decorate


def aggregate_spans(spans: list[Span]) -> dict[str, dict[str, float]]:
    """Fold raw spans into the per-name summary stored in run manifests.

    Returns ``{name: {count, total_s, max_s}}``; iteration order follows
    first appearance, which is launch order for single-threaded runs.
    """
    summary: dict[str, dict[str, float]] = {}
    for record in spans:
        entry = summary.setdefault(
            record.name, {"count": 0, "total_s": 0.0, "max_s": 0.0})
        entry["count"] += 1
        entry["total_s"] += record.duration_s
        entry["max_s"] = max(entry["max_s"], record.duration_s)
    for entry in summary.values():
        entry["total_s"] = round(entry["total_s"], 9)
        entry["max_s"] = round(entry["max_s"], 9)
    return summary


def merge_span_summaries(summaries: "list[dict[str, dict[str, float]]]"
                         ) -> dict[str, dict[str, float]]:
    """Merge per-experiment span summaries into one run-level summary."""
    merged: dict[str, dict[str, float]] = {}
    for summary in summaries:
        for name, entry in summary.items():
            into = merged.setdefault(
                name, {"count": 0, "total_s": 0.0, "max_s": 0.0})
            into["count"] += entry.get("count", 0)
            into["total_s"] = round(into["total_s"]
                                    + entry.get("total_s", 0.0), 9)
            into["max_s"] = max(into["max_s"], entry.get("max_s", 0.0))
    return merged
