"""Span tracer: nested timing instrumentation of the simulator itself.

The paper's methodology is observability of *training*; this module is
observability of *the reproduction* — where does a ``repro run`` spend its
own wall-clock?  Hot paths (trace build, vectorized timing, breakdown
aggregation, cache traffic, experiment lifecycle) open a :func:`span`
around their work; when tracing is enabled, every span records its wall
time, nesting (parent/depth), a ``trace_id`` connecting it to the request
or experiment that caused it, and a few key=value attributes.

Design constraints, in priority order:

* **Near-zero cost when disabled.**  Spans wrap the hot paths of every
  experiment, so the disabled path is a single attribute check returning a
  shared no-op context manager — the acceptance gate is <= 5% overhead on
  ``benchmarks/bench_profile_engine.py``.
* **Context propagation.**  The active-span stack lives in a
  ``contextvars.ContextVar``: spans opened on different threads or asyncio
  tasks nest independently (each thread/task has its own context), and —
  unlike the original ``threading.local`` stack — the context can be
  *carried* across execution boundaries.  ``contextvars.copy_context()``
  hands a worker thread the caller's open stack (the serve executor does
  exactly this), and :meth:`SpanTracer.current_context` /
  :meth:`SpanTracer.attach` snapshot/replay a :class:`TraceContext` into
  places a context object cannot reach (worker *processes*).
* **Nestable and scoped.**  :meth:`SpanTracer.capture` bounds a recording
  scope (the executor opens one per experiment) and returns the spans
  finished inside it, so parallel workers each dump their own spans into
  their :class:`~repro.runner.executor.ExperimentResult`.

Spans are plain data afterwards: :func:`aggregate_spans` folds them into
the per-name summary stored in run manifests,
:func:`repro.obs.timeline_export.spans_to_chrome_trace` lays the raw spans
out on a Perfetto-loadable timeline, and the serve flight recorder
(:mod:`repro.obs.flight`) groups them per ``trace_id`` into one request
tree.
"""

from __future__ import annotations

import contextlib
import contextvars
import functools
import threading
import time
import uuid
from dataclasses import dataclass, field


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace id (one per root span / request)."""
    return uuid.uuid4().hex[:16]


@dataclass
class Span:
    """One finished (or still open) span.

    Attributes:
        name: dotted span name, e.g. ``"timing.kernel_times"``.
        category: coarse grouping used as the Chrome-trace ``cat`` field.
        start_s: start timestamp (``time.perf_counter`` domain).
        end_s: end timestamp; equals ``start_s`` until the span closes.
        thread_id: ``threading.get_ident()`` of the opening thread.
        span_id: id unique within one tracer.
        parent_id: enclosing span's ``span_id``, or ``-1`` at the root.
        depth: nesting depth (root spans are 0).
        trace_id: id shared by every span of one request/experiment tree;
            generated at the root, inherited by children (including
            across thread, task and process boundaries via
            :class:`TraceContext`).
        attrs: small JSON-able key=value payload.
    """

    name: str
    category: str = "repro"
    start_s: float = 0.0
    end_s: float = 0.0
    thread_id: int = 0
    span_id: int = 0
    parent_id: int = -1
    depth: int = 0
    trace_id: str = ""
    attrs: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "category": self.category,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "thread_id": self.thread_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "trace_id": self.trace_id,
            "attrs": dict(self.attrs),
        }


@dataclass(frozen=True)
class TraceContext:
    """A serializable snapshot of the active trace position.

    Small enough to pickle into a worker process (``repro run all
    --jobs N``) or stash in a manifest: spans opened under
    :meth:`SpanTracer.attach` of this context join trace ``trace_id``
    as children of ``span_id``.  ``span_id == -1`` parents new spans at
    the root of the trace (used when only the id itself is being
    propagated, e.g. one pre-assigned trace id per experiment).
    """

    trace_id: str
    span_id: int = -1
    depth: int = -1

    def as_dict(self) -> dict:
        return {"trace_id": self.trace_id, "span_id": self.span_id,
                "depth": self.depth}

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceContext":
        return cls(trace_id=str(payload["trace_id"]),
                   span_id=int(payload.get("span_id", -1)),
                   depth=int(payload.get("depth", -1)))


class _NoopSpan:
    """Shared do-nothing context manager for the tracing-disabled path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> None:
        return None


_NOOP = _NoopSpan()


class _ActiveSpan:
    """Context manager that closes one span on exit."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "SpanTracer", span: Span):
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, *exc_info) -> None:
        self._tracer._finish(self.span)


class SpanTracer:
    """A collector of nested spans.

    Disabled by default; :meth:`capture` (or :meth:`enable`) turns it on.
    All mutating operations are thread-safe.  The active-span stack is an
    immutable tuple held in a ``ContextVar``, so concurrent asyncio tasks
    (which copy their parent's context) never mutate each other's stack.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stack_var: contextvars.ContextVar[tuple[Span, ...]] = \
            contextvars.ContextVar("repro_span_stack", default=())
        self._ambient_var: contextvars.ContextVar[TraceContext | None] = \
            contextvars.ContextVar("repro_trace_context", default=None)
        self._finished: list[Span] = []
        self._sinks: list = []
        self._enabled = False
        self._retain = True
        self._captures = 0
        self._next_id = 0

    # ------------------------------------------------------------- lifecycle
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self, *, retain: bool = True) -> None:
        """Turn tracing on.

        ``retain=False`` keeps the tracer from accumulating finished
        spans in its internal list — spans are delivered to sinks only.
        A long-running server enables with ``retain=False`` so memory
        stays bounded; :meth:`capture` scopes still collect (the scope
        itself forces retention while open).
        """
        self._enabled = True
        self._retain = retain

    def disable(self) -> None:
        self._enabled = False
        self._retain = True

    def reset(self) -> list[Span]:
        """Drain and return every finished span."""
        with self._lock:
            spans, self._finished = self._finished, []
        return spans

    # ---------------------------------------------------------------- sinks
    def add_sink(self, sink) -> None:
        """Register ``sink(span)`` to be called as each span finishes.

        Sinks see every finished span regardless of retention or capture
        scopes (the flight recorder groups them per ``trace_id``).  A
        raising sink is dropped from the delivery, never the caller.
        """
        with self._lock:
            if sink not in self._sinks:
                self._sinks.append(sink)

    def remove_sink(self, sink) -> None:
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)

    # ---------------------------------------------------------------- spans
    def span(self, name: str, category: str = "repro", **attrs):
        """Open a span; use as ``with tracer.span("trace.build"): ...``.

        When tracing is disabled this returns a shared no-op context
        manager without allocating anything.
        """
        if not self._enabled:
            return _NOOP
        stack = self._stack_var.get()
        parent = stack[-1] if stack else None
        if parent is not None:
            trace_id = parent.trace_id
            parent_id = parent.span_id
            depth = parent.depth + 1
        else:
            ambient = self._ambient_var.get()
            if ambient is not None:
                trace_id = ambient.trace_id
                parent_id = ambient.span_id
                depth = ambient.depth + 1
            else:
                trace_id = new_trace_id()
                parent_id = -1
                depth = 0
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        record = Span(
            name=name, category=category,
            start_s=time.perf_counter(), end_s=0.0,
            thread_id=threading.get_ident(), span_id=span_id,
            parent_id=parent_id, depth=depth, trace_id=trace_id,
            attrs=attrs)
        self._stack_var.set(stack + (record,))
        return _ActiveSpan(self, record)

    def _finish(self, span: Span) -> None:
        span.end_s = time.perf_counter()
        stack = self._stack_var.get()
        if stack and stack[-1] is span:
            self._stack_var.set(stack[:-1])
        elif any(open_span is span for open_span in stack):
            # Mis-nested exit (generator abandoned mid-span): drop it.
            self._stack_var.set(
                tuple(s for s in stack if s is not span))
        with self._lock:
            if self._retain or self._captures:
                self._finished.append(span)
            sinks = tuple(self._sinks)
        for sink in sinks:
            try:
                sink(span)
            except Exception:
                pass

    def current(self) -> Span | None:
        """The innermost open span in this context, if any."""
        stack = self._stack_var.get()
        return stack[-1] if stack else None

    def annotate(self, **attrs) -> None:
        """Attach attributes to the innermost open span (no-op outside)."""
        span = self.current()
        if span is not None:
            span.attrs.update(attrs)

    # ------------------------------------------------------ trace contexts
    def current_context(self) -> TraceContext | None:
        """Snapshot of the active trace position, or ``None`` outside one.

        The snapshot is plain data — pickle it into a worker process and
        :meth:`attach` it there so the worker's spans join this trace.
        """
        stack = self._stack_var.get()
        if stack:
            innermost = stack[-1]
            return TraceContext(trace_id=innermost.trace_id,
                                span_id=innermost.span_id,
                                depth=innermost.depth)
        return self._ambient_var.get()

    @contextlib.contextmanager
    def attach(self, context: TraceContext):
        """Replay a :class:`TraceContext`: root spans opened inside the
        ``with`` block parent to it instead of starting a new trace.

        Open spans already on the stack win over the attached context
        (attachment only matters where the stack is empty — a fresh
        thread, task or process).
        """
        token = self._ambient_var.set(context)
        try:
            yield context
        finally:
            self._ambient_var.reset(token)

    # -------------------------------------------------------------- scoping
    def capture(self) -> "_CaptureScope":
        """Enable tracing for a scope and collect the spans it finishes.

        Scopes may nest: inner scopes hand their spans to the outer scope
        as well, and tracing stays enabled until the outermost scope
        closes (if it was disabled before).
        """
        return _CaptureScope(self)


class _CaptureScope:
    """Context manager bounding one recording scope."""

    def __init__(self, tracer: SpanTracer):
        self._tracer = tracer
        self._was_enabled = False
        self._start_index = 0
        self.spans: list[Span] = []

    def __enter__(self) -> "_CaptureScope":
        self._was_enabled = self._tracer.enabled
        with self._tracer._lock:
            self._start_index = len(self._tracer._finished)
            self._tracer._captures += 1
        if not self._was_enabled:
            self._tracer._enabled = True
        return self

    def __exit__(self, *exc_info) -> None:
        if not self._was_enabled:
            self._tracer._enabled = False
        with self._tracer._lock:
            self._tracer._captures -= 1
            self.spans = self._tracer._finished[self._start_index:]
            if self._tracer._captures == 0 and not (
                    self._was_enabled and self._tracer._retain):
                # Outermost scope over a tracer that would not itself
                # have retained these spans (disabled, or enabled in
                # retain=False server mode): drain so the next capture
                # starts clean and server memory stays bounded.
                del self._tracer._finished[self._start_index:]


# The process-wide tracer every instrumented module reports into.
_tracer = SpanTracer()


def get_tracer() -> SpanTracer:
    """The process-wide tracer instance."""
    return _tracer


def span(name: str, category: str = "repro", **attrs):
    """Open a span on the process-wide tracer (module-level convenience)."""
    if not _tracer._enabled:  # inlined fast path for the hot call sites
        return _NOOP
    return _tracer.span(name, category, **attrs)


def annotate(**attrs) -> None:
    """Attach attributes to the innermost open span, if tracing is on."""
    if _tracer._enabled:
        _tracer.annotate(**attrs)


def current_context() -> TraceContext | None:
    """Snapshot the process-wide tracer's active trace position."""
    return _tracer.current_context()


def attach(context: TraceContext):
    """Replay a trace context on the process-wide tracer."""
    return _tracer.attach(context)


def traced(name: str | None = None, category: str = "repro"):
    """Decorator tracing every call of a function as one span."""
    def decorate(function):
        span_name = name or f"{function.__module__}.{function.__qualname__}"

        @functools.wraps(function)
        def wrapper(*args, **kwargs):
            if not _tracer._enabled:
                return function(*args, **kwargs)
            with _tracer.span(span_name, category):
                return function(*args, **kwargs)
        return wrapper
    return decorate


def aggregate_spans(spans: list[Span]) -> dict[str, dict[str, float]]:
    """Fold raw spans into the per-name summary stored in run manifests.

    Returns ``{name: {count, total_s, max_s}}``; iteration order follows
    first appearance, which is launch order for single-threaded runs.
    """
    summary: dict[str, dict[str, float]] = {}
    for record in spans:
        entry = summary.setdefault(
            record.name, {"count": 0, "total_s": 0.0, "max_s": 0.0})
        entry["count"] += 1
        entry["total_s"] += record.duration_s
        entry["max_s"] = max(entry["max_s"], record.duration_s)
    for entry in summary.values():
        entry["total_s"] = round(entry["total_s"], 9)
        entry["max_s"] = round(entry["max_s"], 9)
    return summary


def merge_span_summaries(summaries: "list[dict[str, dict[str, float]]]"
                         ) -> dict[str, dict[str, float]]:
    """Merge per-experiment span summaries into one run-level summary."""
    merged: dict[str, dict[str, float]] = {}
    for summary in summaries:
        for name, entry in summary.items():
            into = merged.setdefault(
                name, {"count": 0, "total_s": 0.0, "max_s": 0.0})
            into["count"] += entry.get("count", 0)
            into["total_s"] = round(into["total_s"]
                                    + entry.get("total_s", 0.0), 9)
            into["max_s"] = max(into["max_s"], entry.get("max_s", 0.0))
    return merged
