"""Flight recorder: a bounded ring of the last N completed requests.

"What did request X actually execute, and why was it slow?" — answered
from the *running* server, after the fact.  The serve app registers a
:class:`FlightRecorder` as a span sink on the process tracer; every span
finishing with a watched ``trace_id`` is buffered, and when the request
completes the app seals a :class:`RequestRecord` — trace id, route,
method/path, status, latency, which cache tier answered, and the full
span tree — into a ``deque(maxlen=capacity)``.  Memory is bounded twice:
the ring holds at most ``capacity`` records, and span buffers exist only
for trace ids between ``begin`` and ``complete``.

Consumers:

* ``GET /debug/requests`` — the ring, newest first, span trees
  summarized;
* ``GET /debug/trace/<trace_id>`` — one record in full: raw spans, the
  nested tree (:func:`build_span_tree`) and a Perfetto/Chrome-trace
  export of exactly that request;
* ``--event-log PATH`` — every sealed record appended as one JSON line
  (a durable structured log that outlives the ring);
* ``repro flight`` — offline tailing/inspection of that JSONL.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.spans import Span, SpanTracer, aggregate_spans

#: Default ring capacity: enough to debug a storm, small next to the
#: hot cache.
DEFAULT_CAPACITY = 256


@dataclass
class RequestRecord:
    """One completed request, as the flight recorder remembers it.

    Attributes:
        trace_id: the request's trace id (every span in ``spans`` shares
            it).
        route: resolved route name (``profile``, ``grid``, ...).
        method: HTTP method.
        path: request path.
        status: response status code.
        duration_s: end-to-end request wall-clock.
        cache: which tier answered — ``hot`` (rendered-bytes cache),
            ``coalesced`` (shared an in-flight leader), ``computed``
            (engine ran), ``shed`` (refused with 503) or ``none``
            (non-cacheable route).
        completed_utc: ISO-8601 UTC second the record was sealed.
        spans: the request's finished spans as plain dicts
            (:meth:`repro.obs.spans.Span.as_dict` shape).
    """

    trace_id: str
    route: str
    method: str
    path: str
    status: int
    duration_s: float
    cache: str = "none"
    completed_utc: str = ""
    spans: list[dict] = field(default_factory=list)

    def summary(self) -> dict:
        """Ring-listing view: everything but the raw spans."""
        return {
            "trace_id": self.trace_id,
            "route": self.route,
            "method": self.method,
            "path": self.path,
            "status": self.status,
            "duration_ms": round(self.duration_s * 1e3, 3),
            "cache": self.cache,
            "completed_utc": self.completed_utc,
            "spans": len(self.spans),
            "span_names": sorted({s["name"] for s in self.spans}),
        }

    def as_dict(self) -> dict:
        return {**self.summary(), "spans": self.spans}


def spans_from_dicts(spans: list[dict]) -> list[Span]:
    """Rehydrate :class:`Span` objects from their ``as_dict`` form (the
    shape stored in records and event logs), for the Perfetto exporter
    and the span aggregator."""
    out: list[Span] = []
    for payload in spans:
        start = float(payload.get("start_s", 0.0))
        out.append(Span(
            name=payload.get("name", "?"),
            category=payload.get("category", "repro"),
            start_s=start,
            end_s=start + float(payload.get("duration_s", 0.0)),
            thread_id=int(payload.get("thread_id", 0)),
            span_id=int(payload.get("span_id", 0)),
            parent_id=int(payload.get("parent_id", -1)),
            depth=int(payload.get("depth", 0)),
            trace_id=str(payload.get("trace_id", "")),
            attrs=dict(payload.get("attrs", {}))))
    return out


def build_span_tree(spans: list[dict]) -> list[dict]:
    """Nest flat span dicts into parent→children trees.

    Returns the list of roots (``parent_id`` absent from the set — the
    ``serve.request`` span for a request record).  Children are ordered
    by start time.  Spans recorded in a worker *process* may reference a
    parent id that lives in another process; they surface as extra
    roots rather than being dropped.
    """
    by_id: dict[int, dict] = {}
    for span in sorted(spans, key=lambda s: s.get("start_s", 0.0)):
        node = dict(span)
        node["children"] = []
        by_id[node["span_id"]] = node
    roots: list[dict] = []
    for node in by_id.values():
        parent = by_id.get(node["parent_id"])
        if parent is not None and parent is not node:
            parent["children"].append(node)
        else:
            roots.append(node)
    return roots


class FlightRecorder:
    """Bounded request-record ring fed by a span sink.

    Lifecycle per request: :meth:`begin` (register the trace id as
    watched) → spans finish on any thread and are buffered by the sink →
    :meth:`complete` (seal the record, unwatch, append to the ring and
    the event log).  Spans finishing for unwatched trace ids — other
    subsystems' traces, or stragglers after a client hung up — are
    dropped at the sink, so the recorder never grows with foreign
    traffic.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 event_log: str | Path | None = None):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.event_log_path = Path(event_log) if event_log else None
        self._lock = threading.Lock()
        self._ring: deque[RequestRecord] = deque(maxlen=capacity)
        self._pending: dict[str, list[dict]] = {}
        self._recorded = 0
        self._dropped_spans = 0
        self._tracer: SpanTracer | None = None
        self._restore: tuple[bool, bool] | None = None
        self._log_handle = None
        if self.event_log_path is not None:
            self.event_log_path.parent.mkdir(parents=True, exist_ok=True)
            self._log_handle = open(self.event_log_path, "a",
                                    encoding="utf-8")

    # ----------------------------------------------------------- tracer tie
    def install(self, tracer: SpanTracer) -> None:
        """Attach to ``tracer``: sink registered, tracing enabled without
        retention (the server must not accumulate spans forever)."""
        self._tracer = tracer
        self._restore = (tracer.enabled, tracer._retain)
        tracer.add_sink(self._sink)
        tracer.enable(retain=tracer._retain if tracer.enabled else False)

    def uninstall(self) -> None:
        """Detach from the tracer and restore its prior state."""
        if self._tracer is not None:
            self._tracer.remove_sink(self._sink)
            if self._restore is not None:
                enabled, retain = self._restore
                if enabled:
                    self._tracer.enable(retain=retain)
                else:
                    self._tracer.disable()
            self._tracer = None
            self._restore = None
        self.close()

    def close(self) -> None:
        with self._lock:
            if self._log_handle is not None:
                try:
                    self._log_handle.close()
                finally:
                    self._log_handle = None

    # ------------------------------------------------------------ recording
    def _sink(self, span: Span) -> None:
        with self._lock:
            buffer = self._pending.get(span.trace_id)
            if buffer is None:
                self._dropped_spans += 1
                return
            buffer.append(span.as_dict())

    def begin(self, trace_id: str) -> None:
        """Start watching ``trace_id``; its spans buffer until sealed."""
        with self._lock:
            self._pending.setdefault(trace_id, [])

    def complete(self, trace_id: str, *, route: str, method: str,
                 path: str, status: int, duration_s: float,
                 cache: str = "none") -> RequestRecord:
        """Seal the record for ``trace_id`` and append it to the ring."""
        record = RequestRecord(
            trace_id=trace_id, route=route, method=method, path=path,
            status=status, duration_s=duration_s, cache=cache,
            completed_utc=time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                        time.gmtime()))
        with self._lock:
            record.spans = self._pending.pop(trace_id, [])
            self._ring.append(record)
            self._recorded += 1
            handle = self._log_handle
            if handle is not None:
                handle.write(json.dumps(record.as_dict()) + "\n")
                handle.flush()
        return record

    # -------------------------------------------------------------- queries
    def records(self, last: int | None = None) -> list[RequestRecord]:
        """Sealed records, newest first (optionally only the last N)."""
        with self._lock:
            records = list(self._ring)
        records.reverse()
        return records if last is None else records[:last]

    def lookup(self, trace_id: str) -> RequestRecord | None:
        """The sealed record for ``trace_id``, if still in the ring."""
        with self._lock:
            for record in self._ring:
                if record.trace_id == trace_id:
                    return record
        return None

    def snapshot(self) -> dict:
        """JSON-able recorder state for ``/stats`` and ``/debug``."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "recorded": self._recorded,
                "held": len(self._ring),
                "pending": len(self._pending),
                "dropped_spans": self._dropped_spans,
                "event_log": (str(self.event_log_path)
                              if self.event_log_path else None),
            }


# ------------------------------------------------------------ offline views
def read_event_log(path: str | Path) -> list[dict]:
    """Parse a flight-recorder JSONL event log (bad lines skipped)."""
    records: list[dict] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(payload, dict) and "trace_id" in payload:
                records.append(payload)
    return records


def render_flight_table(records: list[dict], last: int = 20) -> str:
    """The ``repro flight`` listing: newest requests last (tail order)."""
    from repro.report.tables import format_table

    if not records:
        return "no flight records"
    shown = records[-last:] if last else records
    rows = []
    for record in shown:
        spans = record.get("spans")
        span_count = len(spans) if isinstance(spans, list) else spans
        rows.append((
            record.get("completed_utc", "?"),
            record.get("trace_id", "?"),
            record.get("method", "?"),
            record.get("route", "?"),
            record.get("status", "?"),
            f"{record.get('duration_ms', 0.0):.2f} ms",
            record.get("cache", "?"),
            span_count if span_count is not None else 0,
        ))
    table = format_table(
        ("completed", "trace_id", "method", "route", "status",
         "latency", "cache", "spans"), rows)
    return (f"{table}\n\n{len(shown)} of {len(records)} recorded "
            "requests (newest last); inspect one with "
            "`repro flight --log <path> --trace <trace_id>`")


def render_trace_tree(record: dict) -> str:
    """The ``repro flight --trace`` view: one request's nested spans."""
    spans = record.get("spans")
    header = (f"trace {record.get('trace_id', '?')}  "
              f"{record.get('method', '?')} {record.get('path', '?')} -> "
              f"{record.get('status', '?')}  "
              f"{record.get('duration_ms', 0.0):.2f} ms  "
              f"cache={record.get('cache', '?')}")
    if not isinstance(spans, list) or not spans:
        return header + "\n\n(no spans recorded for this request)"

    lines: list[str] = []

    def walk(node: dict, indent: int) -> None:
        attrs = " ".join(f"{k}={v}" for k, v in node.get("attrs",
                                                         {}).items())
        lines.append(f"{'  ' * indent}{node['name']}  "
                     f"{node.get('duration_s', 0.0) * 1e3:.3f} ms"
                     + (f"  [{attrs}]" if attrs else ""))
        for child in node.get("children", ()):
            walk(child, indent + 1)

    for root in build_span_tree(spans):
        walk(root, 0)
    summary = aggregate_spans(spans_from_dicts(spans))
    busiest = sorted(summary.items(),
                     key=lambda item: item[1]["total_s"], reverse=True)
    footer = "\n".join(
        f"  {name}: {entry['count']}x, {entry['total_s'] * 1e3:.3f} ms"
        for name, entry in busiest[:8])
    return f"{header}\n\n" + "\n".join(lines) + f"\n\ntotals:\n{footer}"
