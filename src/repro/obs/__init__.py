"""Observability layer: span tracing, metrics, timeline export.

The simulator's own instrumentation — :mod:`repro.obs.spans` traces where
a run spends wall-clock, :mod:`repro.obs.metrics` counts what the caches
and memos did, and :mod:`repro.obs.timeline_export` renders simulated
kernel streams and multi-device timelines as Chrome Trace Event JSON for
ui.perfetto.dev / chrome://tracing.  See ``docs/observability.md``.
"""

from repro.obs.flight import (FlightRecorder, RequestRecord, build_span_tree,
                              read_event_log)
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               diff_snapshots, get_registry, hit_rates,
                               merge_snapshots)
from repro.obs.prometheus import (render_prometheus, render_registry,
                                  validate_exposition)
from repro.obs.spans import (Span, SpanTracer, TraceContext, aggregate_spans,
                             annotate, attach, current_context, get_tracer,
                             merge_span_summaries, new_trace_id, span, traced)
from repro.obs.timeline_export import (collective_run_to_chrome_trace,
                                       device_timelines_to_chrome_trace,
                                       profile_to_chrome_trace,
                                       spans_to_chrome_trace,
                                       validate_chrome_trace,
                                       write_chrome_trace)

__all__ = [
    "Counter", "FlightRecorder", "Gauge", "Histogram", "MetricsRegistry",
    "RequestRecord", "Span", "SpanTracer", "TraceContext",
    "aggregate_spans", "annotate", "attach", "build_span_tree",
    "collective_run_to_chrome_trace", "current_context",
    "device_timelines_to_chrome_trace", "diff_snapshots", "get_registry",
    "get_tracer", "hit_rates", "merge_snapshots", "merge_span_summaries",
    "new_trace_id", "profile_to_chrome_trace", "read_event_log",
    "render_prometheus", "render_registry", "span", "spans_to_chrome_trace",
    "traced", "validate_chrome_trace", "validate_exposition",
    "write_chrome_trace",
]
