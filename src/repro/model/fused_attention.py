"""Block-wise (FlashAttention-style) fused attention — executable.

The paper's fusion analysis (Sec. 6.1) removes intermediate traffic from
elementwise chains; the logical endpoint for the attention block is fusing
the *entire* score pipeline — score GEMM, scale, mask, softmax, context
GEMM — into one kernel that never materializes the ``n x n`` score matrix.
This module implements that algorithm (online-softmax accumulation over
key blocks) in NumPy so its numerical equivalence to the reference path is
*demonstrated*, not assumed; the companion cost model lives in
:mod:`repro.ops.fused_attention`.
"""

from __future__ import annotations

import numpy as np


def reference_attention(q: np.ndarray, k: np.ndarray, v: np.ndarray,
                        bias: np.ndarray | None = None) -> np.ndarray:
    """Materialized-score attention: ``softmax(q k^T / sqrt(d) + bias) v``.

    Args:
        q, k, v: ``(..., n, d_head)`` tensors.
        bias: additive mask broadcastable to ``(..., n, n)``.
    """
    d_head = q.shape[-1]
    scores = q @ np.swapaxes(k, -1, -2) / np.sqrt(d_head)
    if bias is not None:
        scores = scores + bias
    scores = scores - scores.max(axis=-1, keepdims=True)
    weights = np.exp(scores)
    weights /= weights.sum(axis=-1, keepdims=True)
    return weights @ v


def blockwise_attention(q: np.ndarray, k: np.ndarray, v: np.ndarray,
                        bias: np.ndarray | None = None,
                        block: int = 64) -> np.ndarray:
    """Fused attention via online softmax over key blocks.

    Processes keys/values ``block`` at a time, maintaining for each query a
    running maximum ``m``, running normalizer ``l`` and running weighted
    sum, so the full score matrix never exists — the memory-traffic and
    capacity win of kernel-fused attention.  Bit-for-bit this matches
    :func:`reference_attention` up to floating-point reassociation.

    Args:
        q, k, v: ``(..., n, d_head)`` tensors.
        bias: additive mask broadcastable to ``(..., n, n)``.
        block: key-block size.
    """
    if block < 1:
        raise ValueError("block must be positive")
    n_keys = k.shape[-2]
    d_head = q.shape[-1]
    scale = 1.0 / np.sqrt(d_head)

    out_shape = np.broadcast_shapes(q.shape[:-2], k.shape[:-2]) + q.shape[-2:]
    running_max = np.full(out_shape[:-1], -np.inf, dtype=np.float64)
    running_sum = np.zeros(out_shape[:-1], dtype=np.float64)
    accumulator = np.zeros(out_shape, dtype=np.float64)

    for start in range(0, n_keys, block):
        stop = min(start + block, n_keys)
        scores = (q @ np.swapaxes(k[..., start:stop, :], -1, -2)) * scale
        if bias is not None:
            scores = scores + bias[..., start:stop]
        block_max = scores.max(axis=-1)
        new_max = np.maximum(running_max, block_max)

        # Rescale previous accumulation to the new maximum.
        correction = np.exp(running_max - new_max)
        correction = np.where(np.isfinite(correction), correction, 0.0)
        weights = np.exp(scores - new_max[..., None])

        running_sum = (running_sum * correction
                       + weights.sum(axis=-1))
        accumulator = (accumulator * correction[..., None]
                       + weights @ v[..., start:stop, :])
        running_max = new_max

    return (accumulator / running_sum[..., None]).astype(q.dtype)


def attention_memory_elements(n: int, d_head: int, heads: int,
                              batch: int, *, fused: bool) -> int:
    """Activation elements the attention block stashes for backward.

    Eager attention saves the two ``n x n`` score tensors per head; fused
    attention saves only the output and the per-row softmax statistics and
    recomputes scores block-wise in backward (the capacity win that lets
    long-sequence models train at all).
    """
    if fused:
        return batch * heads * (n * d_head + 2 * n)
    return batch * heads * (2 * n * n + n * d_head)
