"""Executable NumPy BERT model."""

from repro.model.attention import MultiHeadSelfAttention
from repro.model.bert import BertForPreTraining
from repro.model.embeddings import BertEmbeddings
from repro.model.encoder import Encoder, EncoderLayer
from repro.model.feedforward import FeedForward
from repro.model.fused_attention import (attention_memory_elements,
                                         blockwise_attention,
                                         reference_attention)
from repro.model.heads import (MaskedLMHead, NextSentenceHead,
                               PreTrainingHeads)

__all__ = [
    "BertEmbeddings", "BertForPreTraining", "Encoder", "EncoderLayer",
    "FeedForward", "MaskedLMHead", "MultiHeadSelfAttention",
    "NextSentenceHead", "PreTrainingHeads", "attention_memory_elements",
    "blockwise_attention", "reference_attention",
]
