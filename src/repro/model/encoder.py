"""Transformer encoder layer and stack (Fig. 2a/2b)."""

from __future__ import annotations

import numpy as np

from repro.config import BertConfig
from repro.model.attention import MultiHeadSelfAttention
from repro.model.feedforward import FeedForward
from repro.tensor.module import Module
from repro.tensor.tensor import Tensor


class EncoderLayer(Module):
    """One Transformer encoder layer: attention then FC, each with its
    residual connection and LayerNorm."""

    def __init__(self, config: BertConfig, *, rng: np.random.Generator,
                 dropout_p: float = 0.1):
        super().__init__()
        self.attention = MultiHeadSelfAttention(config, rng=rng,
                                                dropout_p=dropout_p)
        self.ffn = FeedForward(config, rng=rng, dropout_p=dropout_p)

    def forward(self, hidden: Tensor,
                attention_bias: np.ndarray | None = None) -> Tensor:
        hidden = self.attention(hidden, attention_bias)
        return self.ffn(hidden)


class Encoder(Module):
    """Stack of ``N`` encoder layers."""

    def __init__(self, config: BertConfig, *, rng: np.random.Generator,
                 dropout_p: float = 0.1):
        super().__init__()
        self.config = config
        for index in range(config.num_layers):
            setattr(self, f"layer{index}",
                    EncoderLayer(config, rng=rng, dropout_p=dropout_p))

    def layers(self) -> list[EncoderLayer]:
        """The encoder layers, in order."""
        return [getattr(self, f"layer{i}")
                for i in range(self.config.num_layers)]

    def forward(self, hidden: Tensor,
                attention_bias: np.ndarray | None = None,
                return_all: bool = False):
        """Run the stack.

        Args:
            hidden: ``(B, n, d_model)`` embedded input.
            attention_bias: additive attention mask.
            return_all: also return every layer's output (for analysis).
        """
        outputs = []
        for layer in self.layers():
            hidden = layer(hidden, attention_bias)
            if return_all:
                outputs.append(hidden)
        return (hidden, outputs) if return_all else hidden
