"""Output heads: masked-LM and next-sentence prediction (Sec. 2.3).

The MLM decoder weight is tied to the token embedding table, as in the
reference implementation; every position is projected to the vocabulary and
the loss ignores unmasked positions.
"""

from __future__ import annotations

import numpy as np

from repro.config import BertConfig
from repro.tensor import functional as F
from repro.tensor.module import LayerNorm, Linear, Module, Parameter
from repro.tensor.tensor import Tensor


class MaskedLMHead(Module):
    """Transform (dense + GeLU + LN) then tied-weight vocab decoder."""

    def __init__(self, config: BertConfig, token_embedding: Parameter, *,
                 rng: np.random.Generator):
        super().__init__()
        d = config.d_model
        self.transform = Linear(d, d, rng=rng)
        self.layernorm = LayerNorm(d)
        # Tied to the token embedding table: bypass parameter registration
        # so the shared tensor is counted (and updated) exactly once.
        object.__setattr__(self, "_decoder_weight", token_embedding)
        self.decoder_bias = Parameter(
            np.zeros(config.vocab_size, dtype=np.float32),
            name="decoder_bias")

    def forward(self, hidden: Tensor) -> Tensor:
        """Vocabulary logits ``(B, n, vocab)`` from ``(B, n, d)`` states."""
        transformed = self.layernorm(F.gelu(self.transform(hidden)))
        logits = transformed.matmul(self._decoder_weight.transpose())
        return logits + self.decoder_bias


class NextSentenceHead(Module):
    """Pooler (dense + tanh over [CLS]) and binary classifier."""

    def __init__(self, config: BertConfig, *, rng: np.random.Generator):
        super().__init__()
        d = config.d_model
        self.pooler = Linear(d, d, rng=rng)
        self.classifier = Linear(d, 2, rng=rng)

    def forward(self, hidden: Tensor) -> Tensor:
        """NSP logits ``(B, 2)`` from ``(B, n, d)`` encoder output."""
        cls = hidden[:, 0, :]
        pooled = self.pooler(cls).tanh()
        return self.classifier(pooled)


class PreTrainingHeads(Module):
    """Both pre-training heads plus the combined loss."""

    def __init__(self, config: BertConfig, token_embedding: Parameter, *,
                 rng: np.random.Generator):
        super().__init__()
        self.mlm = MaskedLMHead(config, token_embedding, rng=rng)
        self.nsp = NextSentenceHead(config, rng=rng)

    def forward(self, hidden: Tensor) -> tuple[Tensor, Tensor]:
        return self.mlm(hidden), self.nsp(hidden)

    def loss(self, hidden: Tensor, mlm_labels: np.ndarray,
             nsp_labels: np.ndarray, *, ignore_index: int = -100) -> Tensor:
        """Masked-LM + NSP cross-entropy.

        Args:
            hidden: ``(B, n, d)`` encoder output.
            mlm_labels: ``(B, n)`` target token ids, ``ignore_index`` where
                unmasked.
            nsp_labels: ``(B,)`` is-next labels.
        """
        mlm_logits, nsp_logits = self(hidden)
        batch, seq_len, vocab = mlm_logits.shape
        mlm_loss = F.cross_entropy(
            mlm_logits.reshape(batch * seq_len, vocab),
            np.asarray(mlm_labels).reshape(-1), ignore_index=ignore_index)
        nsp_loss = F.cross_entropy(nsp_logits, np.asarray(nsp_labels))
        return mlm_loss + nsp_loss
