"""The FC (position-wise feed-forward) sublayer.

Two dense layers with a GeLU between them — the FC-1/FC-2 GEMMs of
Table 2b, which dominate BERT's runtime (Obs. 2) because of the 4x
intermediate dimension.
"""

from __future__ import annotations

import numpy as np

from repro.config import BertConfig
from repro.tensor import functional as F
from repro.tensor.module import Dropout, LayerNorm, Linear, Module
from repro.tensor.tensor import Tensor


class FeedForward(Module):
    """FC sublayer: ``LN(x + DR(W2 @ gelu(W1 @ x)))``."""

    def __init__(self, config: BertConfig, *, rng: np.random.Generator,
                 dropout_p: float = 0.1):
        super().__init__()
        self.fc1 = Linear(config.d_model, config.d_ff, rng=rng)
        self.fc2 = Linear(config.d_ff, config.d_model, rng=rng)
        self.dropout = Dropout(dropout_p, rng)
        self.layernorm = LayerNorm(config.d_model)

    def forward(self, hidden: Tensor) -> Tensor:
        intermediate = F.gelu(self.fc1(hidden))
        projected = self.dropout(self.fc2(intermediate))
        return self.layernorm(projected + hidden)
