"""BERT input embedding layer.

Token + position + segment table lookups, summed, then LayerNorm and
dropout — the (runtime-negligible, Obs. 1) front of the network.
"""

from __future__ import annotations

import numpy as np

from repro.config import BertConfig
from repro.tensor.module import Dropout, Embedding, LayerNorm, Module
from repro.tensor.tensor import Tensor


class BertEmbeddings(Module):
    """Input representation: token, position and segment embeddings."""

    def __init__(self, config: BertConfig, *, rng: np.random.Generator,
                 dropout_p: float = 0.1):
        super().__init__()
        self.config = config
        self.token = Embedding(config.vocab_size, config.d_model, rng=rng)
        self.position = Embedding(config.max_position, config.d_model,
                                  rng=rng)
        self.segment = Embedding(config.type_vocab_size, config.d_model,
                                 rng=rng)
        self.layernorm = LayerNorm(config.d_model)
        self.dropout = Dropout(dropout_p, rng)

    def forward(self, token_ids: np.ndarray,
                segment_ids: np.ndarray | None = None) -> Tensor:
        """Embed a ``(B, n)`` batch of token ids into ``(B, n, d_model)``.

        Args:
            token_ids: integer token ids.
            segment_ids: sentence A/B ids; defaults to all zeros.
        """
        token_ids = np.asarray(token_ids)
        if token_ids.ndim != 2:
            raise ValueError("token_ids must be (batch, seq_len)")
        batch, seq_len = token_ids.shape
        if seq_len > self.config.max_position:
            raise ValueError(
                f"sequence length {seq_len} exceeds max_position "
                f"{self.config.max_position}")
        if segment_ids is None:
            segment_ids = np.zeros_like(token_ids)
        positions = np.broadcast_to(np.arange(seq_len), (batch, seq_len))

        summed = (self.token(token_ids) + self.position(positions)
                  + self.segment(np.asarray(segment_ids)))
        return self.dropout(self.layernorm(summed))
