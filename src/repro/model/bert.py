"""The full pre-training BERT model."""

from __future__ import annotations

import numpy as np

from repro.config import BertConfig
from repro.model.embeddings import BertEmbeddings
from repro.model.encoder import Encoder
from repro.model.heads import PreTrainingHeads
from repro.tensor import functional as F
from repro.tensor.module import Module
from repro.tensor.tensor import Tensor


class BertForPreTraining(Module):
    """Embeddings + encoder stack + MLM/NSP heads, trainable end to end.

    Example:
        >>> import numpy as np
        >>> from repro.config import BERT_TINY
        >>> model = BertForPreTraining(BERT_TINY, seed=0)
        >>> tokens = np.zeros((2, 16), dtype=np.int64)
        >>> hidden = model.encode(tokens)
        >>> hidden.shape
        (2, 16, 64)
    """

    def __init__(self, config: BertConfig, *, seed: int = 0,
                 dropout_p: float = 0.1):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.config = config
        self.embeddings = BertEmbeddings(config, rng=rng,
                                         dropout_p=dropout_p)
        self.encoder = Encoder(config, rng=rng, dropout_p=dropout_p)
        self.heads = PreTrainingHeads(config, self.embeddings.token.weight,
                                      rng=rng)

    def encode(self, token_ids: np.ndarray,
               segment_ids: np.ndarray | None = None,
               padding_mask: np.ndarray | None = None,
               causal: bool = False) -> Tensor:
        """Encoder output ``(B, n, d_model)`` for a token batch.

        Args:
            token_ids: ``(B, n)`` integer token ids.
            segment_ids: sentence A/B ids.
            padding_mask: ``(B, n)`` boolean, True at valid positions.
            causal: apply a decoder-style mask so each position attends
                only to itself and earlier positions (Sec. 2.3's
                masked-attention variant; training cost is unchanged).
        """
        padding_bias = (F.attention_mask_bias(padding_mask)
                        if padding_mask is not None else None)
        causal_bias = (F.causal_attention_bias(np.asarray(token_ids).shape[1])
                       if causal else None)
        bias = F.combine_attention_biases(padding_bias, causal_bias)
        hidden = self.embeddings(token_ids, segment_ids)
        return self.encoder(hidden, bias)

    def forward(self, token_ids: np.ndarray,
                segment_ids: np.ndarray | None = None,
                padding_mask: np.ndarray | None = None
                ) -> tuple[Tensor, Tensor]:
        """MLM logits ``(B, n, vocab)`` and NSP logits ``(B, 2)``."""
        return self.heads(self.encode(token_ids, segment_ids, padding_mask))

    def loss(self, token_ids: np.ndarray, mlm_labels: np.ndarray,
             nsp_labels: np.ndarray,
             segment_ids: np.ndarray | None = None,
             padding_mask: np.ndarray | None = None) -> Tensor:
        """Combined pre-training loss for one batch."""
        hidden = self.encode(token_ids, segment_ids, padding_mask)
        return self.heads.loss(hidden, mlm_labels, nsp_labels)
