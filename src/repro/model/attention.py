"""Multi-head self-attention (Figs. 2c/2d and 5 of the paper).

All tokens of all sequences are packed into matrices, so every computation
manifests as a (batched) GEMM even at mini-batch one — the property the
paper repeatedly stresses against matrix-vector accelerator designs.
"""

from __future__ import annotations

import numpy as np

from repro.config import BertConfig
from repro.tensor import functional as F
from repro.tensor.module import Dropout, LayerNorm, Linear, Module
from repro.tensor.tensor import Tensor


class MultiHeadSelfAttention(Module):
    """The attention sublayer: QKV projections, scaled dot-product
    attention per head, output projection, then dropout + residual + LN."""

    def __init__(self, config: BertConfig, *, rng: np.random.Generator,
                 dropout_p: float = 0.1):
        super().__init__()
        self.config = config
        d = config.d_model
        self.query = Linear(d, d, rng=rng)
        self.key = Linear(d, d, rng=rng)
        self.value = Linear(d, d, rng=rng)
        self.output = Linear(d, d, rng=rng)
        self.score_dropout = Dropout(dropout_p, rng)
        self.out_dropout = Dropout(dropout_p, rng)
        self.layernorm = LayerNorm(d)

    def _split_heads(self, x: Tensor, batch: int, seq_len: int) -> Tensor:
        """(B, n, d) -> (B, h, n, d_head)."""
        h, d_head = self.config.num_heads, self.config.d_head
        return x.reshape(batch, seq_len, h, d_head).transpose(0, 2, 1, 3)

    def attention_scores(self, hidden: Tensor,
                         attention_bias: np.ndarray | None = None) -> Tensor:
        """Softmax-normalized attention probabilities ``(B, h, n, n)``.

        Exposed separately so tests and examples can inspect the score
        matrices (each row sums to one).
        """
        batch, seq_len, _ = hidden.shape
        q = self._split_heads(self.query(hidden), batch, seq_len)
        k = self._split_heads(self.key(hidden), batch, seq_len)
        scores = q.matmul(k.transpose(0, 1, 3, 2))
        scores = scores * (1.0 / np.sqrt(self.config.d_head))
        if attention_bias is not None:
            scores = scores + Tensor(attention_bias)
        return F.softmax(scores, axis=-1)

    def forward(self, hidden: Tensor,
                attention_bias: np.ndarray | None = None) -> Tensor:
        """Apply the attention sublayer to ``(B, n, d_model)`` activations.

        Args:
            hidden: input activations.
            attention_bias: optional additive mask ``(B, 1, 1, n)`` (see
                :func:`repro.tensor.functional.attention_mask_bias`).
        """
        batch, seq_len, d = hidden.shape
        probs = self.score_dropout(self.attention_scores(hidden,
                                                         attention_bias))
        v = self._split_heads(self.value(hidden), batch, seq_len)
        context = probs.matmul(v)                        # (B, h, n, d_head)
        context = context.transpose(0, 2, 1, 3).reshape(batch, seq_len, d)
        projected = self.out_dropout(self.output(context))
        return self.layernorm(projected + hidden)
