"""End-to-end training loop for the executable BERT model.

Drives the NumPy model through real forward/backward/update iterations on
synthetic MLM+NSP batches.  Used by the tests (loss must fall below the
uniform-guess baseline) and the wall-clock profiling example.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.data.batching import PreTrainingBatch, PreTrainingDataset
from repro.model.bert import BertForPreTraining
from repro.optim.base import Optimizer
from repro.train.schedule import constant


@dataclass
class StepResult:
    """Metrics of one training step.

    Attributes:
        step: 1-based step index.
        loss: combined MLM+NSP loss.
        grad_norm: global gradient L2 norm.
        lr: learning rate applied.
        seconds: wall-clock duration of the step.
    """

    step: int
    loss: float
    grad_norm: float
    lr: float
    seconds: float


@dataclass
class TrainingHistory:
    """Accumulated step results."""

    steps: list[StepResult] = field(default_factory=list)

    def losses(self) -> list[float]:
        return [s.loss for s in self.steps]

    @property
    def final_loss(self) -> float:
        if not self.steps:
            raise ValueError("no steps recorded")
        return self.steps[-1].loss


class Trainer:
    """Training-loop driver.

    Args:
        model: the executable BERT model.
        optimizer: any :class:`~repro.optim.base.Optimizer`.
        dataset: batch source.
        lr_schedule: ``step -> learning rate``; defaults to the optimizer's
            constant ``lr``.
    """

    def __init__(self, model: BertForPreTraining, optimizer: Optimizer,
                 dataset: PreTrainingDataset,
                 lr_schedule: Callable[[int], float] | None = None):
        self.model = model
        self.optimizer = optimizer
        self.dataset = dataset
        base_lr = optimizer.lr
        self.lr_schedule = lr_schedule or (
            lambda step: constant(step, base_lr=base_lr))
        self.history = TrainingHistory()

    def train_step(self, batch: PreTrainingBatch,
                   micro_batches: int = 1) -> StepResult:
        """One optimizer step on ``batch``.

        Args:
            batch: the full batch for this step.
            micro_batches: gradient-accumulation factor — the batch is
                split into this many forward/backward passes whose
                gradients sum before the single update, enabling effective
                batches beyond what fits at once (the same trick LAMB's
                large-batch regime relies on).
        """
        if micro_batches < 1 or batch.batch_size % micro_batches:
            raise ValueError("micro_batches must divide the batch size")
        start = time.perf_counter()
        self.optimizer.zero_grad()
        chunk = batch.batch_size // micro_batches
        total_loss = 0.0
        for index in range(micro_batches):
            rows = slice(index * chunk, (index + 1) * chunk)
            loss = self.model.loss(batch.token_ids[rows],
                                   batch.mlm_labels[rows],
                                   batch.nsp_labels[rows],
                                   segment_ids=batch.segment_ids[rows],
                                   padding_mask=batch.padding_mask[rows])
            # Mean-reduce across micro-batches so gradients match a single
            # full-batch pass.
            (loss * (1.0 / micro_batches)).backward()
            total_loss += float(loss.item()) / micro_batches
        grad_norm = self.optimizer.global_grad_norm()
        step_index = self.optimizer.step_count + 1
        self.optimizer.lr = self.lr_schedule(step_index)
        self.optimizer.step()
        result = StepResult(step=step_index, loss=total_loss,
                            grad_norm=grad_norm, lr=self.optimizer.lr,
                            seconds=time.perf_counter() - start)
        self.history.steps.append(result)
        return result

    def train(self, batch_size: int, steps: int, log_every: int = 0,
              micro_batches: int = 1) -> TrainingHistory:
        """Run ``steps`` iterations of fresh batches.

        Args:
            batch_size: mini-batch size ``B``.
            steps: iteration count.
            log_every: print progress every that many steps (0 = silent).
            micro_batches: gradient-accumulation factor per step.
        """
        for batch in self.dataset.batches(batch_size, steps):
            result = self.train_step(batch, micro_batches=micro_batches)
            if log_every and result.step % log_every == 0:
                print(f"step {result.step:5d}  loss {result.loss:7.4f}  "
                      f"|g| {result.grad_norm:8.3f}  lr {result.lr:.2e}  "
                      f"{result.seconds*1e3:7.1f} ms")
        return self.history
