"""End-to-end training loop, schedules, checkpoints and evaluation."""

from repro.train.checkpoint_io import load_checkpoint, save_checkpoint
from repro.train.evaluate import EvalResult, evaluate
from repro.train.loop import StepResult, Trainer, TrainingHistory
from repro.train.schedule import constant, linear_warmup

__all__ = ["EvalResult", "StepResult", "Trainer", "TrainingHistory",
           "constant", "evaluate", "linear_warmup", "load_checkpoint",
           "save_checkpoint"]
