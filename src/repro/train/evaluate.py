"""Evaluation metrics for the executable model.

Masked-LM top-1 accuracy and NSP accuracy over held-out synthetic batches,
used by tests and examples to show the model genuinely learns (chance
levels: ``1/vocab`` and ``1/2`` respectively).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.batching import IGNORE_INDEX, PreTrainingDataset
from repro.model.bert import BertForPreTraining


@dataclass(frozen=True)
class EvalResult:
    """Aggregated evaluation metrics.

    Attributes:
        mlm_accuracy: top-1 accuracy on masked positions.
        nsp_accuracy: is-next classification accuracy.
        mlm_positions: masked positions evaluated.
        examples: sequence count evaluated.
    """

    mlm_accuracy: float
    nsp_accuracy: float
    mlm_positions: int
    examples: int


def evaluate(model: BertForPreTraining, dataset: PreTrainingDataset, *,
             batch_size: int = 16, batches: int = 4) -> EvalResult:
    """Run the model on fresh batches and score both objectives.

    The model is switched to eval mode (dropout off) and restored to its
    previous mode afterwards.
    """
    if batches < 1 or batch_size < 1:
        raise ValueError("batches and batch_size must be positive")
    was_training = model.training
    model.eval()
    mlm_correct = 0
    mlm_total = 0
    nsp_correct = 0
    examples = 0
    try:
        for batch in dataset.batches(batch_size, batches):
            mlm_logits, nsp_logits = model(
                batch.token_ids, segment_ids=batch.segment_ids,
                padding_mask=batch.padding_mask)
            predictions = mlm_logits.data.argmax(axis=-1)
            labeled = batch.mlm_labels != IGNORE_INDEX
            mlm_correct += int(
                (predictions[labeled] == batch.mlm_labels[labeled]).sum())
            mlm_total += int(labeled.sum())
            nsp_pred = nsp_logits.data.argmax(axis=-1)
            nsp_correct += int((nsp_pred == batch.nsp_labels).sum())
            examples += batch.batch_size
    finally:
        model.train(was_training)
    return EvalResult(
        mlm_accuracy=mlm_correct / max(1, mlm_total),
        nsp_accuracy=nsp_correct / max(1, examples),
        mlm_positions=mlm_total,
        examples=examples,
    )
