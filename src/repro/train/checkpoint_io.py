"""Model/optimizer checkpoint persistence.

Saves the executable model's parameters (and optionally the optimizer's
moment state and step counter) to a single ``.npz`` file, so long training
runs can resume and experiments can be replayed bit for bit.
"""

from __future__ import annotations

import os

import numpy as np

from repro.optim.base import Optimizer
from repro.tensor.module import Module

_STEP_KEY = "__optimizer_step__"
_STATE_PREFIX = "__state__"


def save_checkpoint(path: str, model: Module,
                    optimizer: Optimizer | None = None) -> None:
    """Write model parameters (and optimizer state) to ``path``.

    Args:
        path: destination ``.npz`` file; parent directories are created.
        model: model whose ``named_parameters`` are saved.
        optimizer: optionally saves its per-parameter moment tensors and
            step count alongside.
    """
    payload: dict[str, np.ndarray] = dict(model.state_dict())
    if optimizer is not None:
        payload[_STEP_KEY] = np.asarray(optimizer.step_count)
        for index, state in enumerate(optimizer._state):
            for key, value in state.items():
                payload[f"{_STATE_PREFIX}{index}.{key}"] = value
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "wb") as handle:
        np.savez(handle, **payload)


def load_checkpoint(path: str, model: Module,
                    optimizer: Optimizer | None = None) -> None:
    """Restore model parameters (and optimizer state) from ``path``.

    Raises:
        KeyError/ValueError: on any name or shape mismatch (strict load).
    """
    with np.load(path) as archive:
        payload = {key: archive[key] for key in archive.files}

    state = {key: value for key, value in payload.items()
             if not key.startswith((_STEP_KEY, _STATE_PREFIX))}
    model.load_state_dict(state)

    if optimizer is not None:
        if _STEP_KEY not in payload:
            raise KeyError("checkpoint holds no optimizer state")
        optimizer.step_count = int(payload[_STEP_KEY])
        for index in range(len(optimizer._state)):
            restored: dict[str, np.ndarray] = {}
            prefix = f"{_STATE_PREFIX}{index}."
            for key, value in payload.items():
                if key.startswith(prefix):
                    restored[key[len(prefix):]] = value.copy()
            optimizer._state[index] = restored
