"""Learning-rate schedules used in BERT pre-training."""

from __future__ import annotations


def linear_warmup(step: int, *, base_lr: float, warmup_steps: int,
                  total_steps: int, min_lr: float = 0.0) -> float:
    """Linear warmup then linear decay (the BERT/LAMB schedule).

    Args:
        step: 1-based training step.
        base_lr: peak learning rate reached after warmup.
        warmup_steps: warmup duration.
        total_steps: total schedule length; decays to ``min_lr`` at the end.
        min_lr: floor learning rate.
    """
    if step < 1:
        raise ValueError("step is 1-based")
    if warmup_steps < 0 or total_steps <= 0:
        raise ValueError("invalid schedule lengths")
    if warmup_steps and step <= warmup_steps:
        return base_lr * step / warmup_steps
    if step >= total_steps:
        return min_lr
    span = max(1, total_steps - warmup_steps)
    progress = (step - warmup_steps) / span
    return min_lr + (base_lr - min_lr) * (1.0 - progress)


def constant(step: int, *, base_lr: float) -> float:
    """Constant learning rate (for small-scale tests)."""
    if step < 1:
        raise ValueError("step is 1-based")
    return base_lr
