"""Near-memory compute (NMC) device model (Sec. 6.2.1).

Models the "balanced design point" the paper evaluates: one SIMD ALU per
DRAM bank, commands broadcast from the host, data placed so each ALU
operates on its own bank.  Performance is bounded by (a) the aggregate
*internal* bank bandwidth — several times the external pin bandwidth,
because all banks stream in parallel without sharing the off-chip
interface — and (b) aggregate ALU throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.device import DeviceModel


@dataclass(frozen=True)
class NmcConfig:
    """Bank-level NMC design parameters.

    Attributes:
        name: configuration label.
        banks: DRAM banks with an attached ALU.
        bank_bandwidth_gbps: per-bank internal streaming bandwidth (row
            buffer reads at tCCD cadence), GB/s.
        alu_ops_per_cycle: SIMD FP operations per ALU per cycle.
        clock_ghz: ALU/command clock.
        command_overhead_us: fixed broadcast/setup cost per offloaded
            operation group.
    """

    name: str
    banks: int
    bank_bandwidth_gbps: float
    alu_ops_per_cycle: int
    clock_ghz: float
    command_overhead_us: float = 2.0

    def __post_init__(self) -> None:
        if min(self.banks, self.alu_ops_per_cycle) <= 0:
            raise ValueError("banks and alu_ops_per_cycle must be positive")
        if self.bank_bandwidth_gbps <= 0 or self.clock_ghz <= 0:
            raise ValueError("bandwidth and clock must be positive")

    @property
    def internal_bandwidth(self) -> float:
        """Aggregate bank-level bandwidth in bytes/s."""
        return self.banks * self.bank_bandwidth_gbps * 1e9

    @property
    def alu_throughput(self) -> float:
        """Aggregate FLOP/s of the bank ALUs."""
        return self.banks * self.alu_ops_per_cycle * self.clock_ghz * 1e9

    def execution_time(self, *, flops: int, bytes_moved: int,
                       command_groups: int = 1) -> float:
        """Time to execute an offloaded elementwise phase.

        Args:
            flops: arithmetic operation count.
            bytes_moved: bank-local reads + writes.
            command_groups: broadcast command batches issued by the host.
        """
        if flops < 0 or bytes_moved < 0 or command_groups < 1:
            raise ValueError("invalid NMC workload description")
        streaming = bytes_moved / self.internal_bandwidth
        arithmetic = flops / self.alu_throughput
        return max(streaming, arithmetic) + (command_groups
                                             * self.command_overhead_us * 1e-6)


def hbm2_bank_nmc(device: DeviceModel | None = None) -> NmcConfig:
    """Bank-level NMC for an MI100-class HBM2 system.

    32 GB of HBM2 across 4 stacks x 8 channels x 16 banks = 512 banks.
    Per-bank streaming of ~9.6 GB/s (row-buffer reads at tCCD) gives an
    aggregate internal bandwidth of ~4.9 TB/s, i.e. ~4x the 1.23 TB/s pin
    bandwidth — the ratio bank-level PIM proposals (GradPIM [46], the
    HBM-PIM industrial products [53, 54]) report.
    """
    return NmcConfig(
        name="hbm2-bank-nmc",
        banks=512,
        bank_bandwidth_gbps=9.6,
        alu_ops_per_cycle=16,
        clock_ghz=1.2,
    )
