"""Near-memory compute modeling (Sec. 6.2.1)."""

from repro.nmc.model import NmcConfig, hbm2_bank_nmc
from repro.nmc.offload import (LambOffloadResult, OptimizerOffloadPass,
                               evaluate_lamb_offload, optimizer_workload)

__all__ = ["LambOffloadResult", "NmcConfig", "OptimizerOffloadPass",
           "evaluate_lamb_offload", "hbm2_bank_nmc", "optimizer_workload"]
