"""Evaluating LAMB offload to near-memory compute (Sec. 6.2.1).

The paper offloads only the optimizer: LAMB is a pure elementwise/reduction
phase invoked once per iteration after all gradient writes, so offloading
it needs no fine-grained GPU<->NMC synchronization, and GPU-side kernel
fusion cannot reduce its traffic further (each stage already streams each
operand exactly once).

Two comparisons are reported, as in the paper:

* speedup of LAMB itself against an **optimistic GPU baseline** whose time
  is just the minimal algorithm traffic at full pin bandwidth;
* end-to-end iteration improvement when the *modeled* LAMB time in the
  profile is replaced by the NMC time (5-22% across configurations).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import BertConfig, TrainingConfig
from repro.hw.device import DeviceModel
from repro.nmc.model import NmcConfig
from repro.ops.base import Component
from repro.profiler.profiler import profile_trace
from repro.trace.bert_trace import build_iteration_trace
from repro.trace.kernel_table import KernelTable
from repro.trace.passes import PassContext, TracePass


@dataclass(frozen=True)
class LambOffloadResult:
    """Outcome of offloading LAMB to NMC for one training point.

    Attributes:
        label: training-point label.
        lamb_gpu_actual_s: modeled GPU LAMB time in the baseline profile.
        lamb_gpu_optimistic_s: minimal-traffic-at-pin-bandwidth baseline.
        lamb_nmc_s: NMC execution time.
        iteration_baseline_s: full iteration time on the GPU.
        iteration_nmc_s: iteration time with LAMB on NMC.
    """

    label: str
    lamb_gpu_actual_s: float
    lamb_gpu_optimistic_s: float
    lamb_nmc_s: float
    iteration_baseline_s: float
    iteration_nmc_s: float

    @property
    def lamb_speedup_vs_optimistic(self) -> float:
        """The paper's 3.8x headline comparison."""
        return self.lamb_gpu_optimistic_s / self.lamb_nmc_s

    @property
    def lamb_speedup_vs_actual(self) -> float:
        return self.lamb_gpu_actual_s / self.lamb_nmc_s

    @property
    def end_to_end_improvement(self) -> float:
        """Fractional iteration-time reduction (the 5-22% band)."""
        return 1.0 - self.iteration_nmc_s / self.iteration_baseline_s


def optimizer_workload(trace) -> tuple[int, int, int]:
    """(flops, bytes, kernel count) of a trace's optimizer phase.

    A columnar masked reduction; accepts anything
    :meth:`KernelTable.coerce` does (Trace, KernelTable, kernel iterable).
    """
    table = KernelTable.coerce(trace)
    optimizer = table.mask(component=Component.OPTIMIZER)
    flops = int(table.flops[optimizer].sum())
    moved = int(table.bytes_total[optimizer].sum())
    return flops, moved, int(np.count_nonzero(optimizer))


class OptimizerOffloadPass(TracePass):
    """Drop optimizer rows from the GPU trace — NMC executes them instead.

    The dropped work is what :func:`optimizer_workload` measures on the
    *un*-offloaded trace; :func:`evaluate_lamb_offload` prices it on the
    NMC model and splices the time back into the iteration.
    """

    name = "offload_optimizer"

    def apply(self, table: KernelTable, ctx: PassContext) -> KernelTable:
        keep = ~table.mask(component=Component.OPTIMIZER)
        if keep.all():
            return table
        return table.select(keep)


def evaluate_lamb_offload(model: BertConfig, training: TrainingConfig,
                          device: DeviceModel,
                          nmc: NmcConfig) -> LambOffloadResult:
    """Offload the optimizer phase of one training point to NMC."""
    trace = build_iteration_trace(model, training)
    profile = profile_trace(trace, device)
    flops, bytes_moved, groups = optimizer_workload(trace)

    lamb_actual = profile.time_of(component=Component.OPTIMIZER)
    lamb_optimistic = bytes_moved / device.peak_bandwidth
    lamb_nmc = nmc.execution_time(flops=flops, bytes_moved=bytes_moved,
                                  command_groups=groups)

    baseline = profile.total_time
    return LambOffloadResult(
        label=training.label,
        lamb_gpu_actual_s=lamb_actual,
        lamb_gpu_optimistic_s=lamb_optimistic,
        lamb_nmc_s=lamb_nmc,
        iteration_baseline_s=baseline,
        iteration_nmc_s=baseline - lamb_actual + lamb_nmc,
    )
