"""Windowed (block-local) attention cost model — a future-trend what-if.

Takeaway 10 shows attention operations growing quadratically with sequence
length, which is why longer-context models and attention accelerators
(A3 [33], SpAtten [91]) restrict each query to a local window.  This module
models block-local attention: queries in a block of size ``block`` attend
to ``window_blocks`` neighboring key blocks, so cost is *linear* in ``n``.

The kernels mirror the dense path's structure (score batched GEMM, scale/
mask/softmax/dropout stream, context batched GEMM) with the score matrix
shrunk from ``n x n`` to ``n x (block * window_blocks)`` per head.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.ops.base import Component, DType, Kernel, Phase, Region
from repro.ops.elementwise import (dropout_backward, dropout_forward,
                                   elementwise)
from repro.ops.gemm import GemmShape
from repro.ops.reduction import softmax_kernels


@dataclass(frozen=True)
class WindowConfig:
    """Block-local attention pattern.

    Attributes:
        block: query/key block size (rows per score tile).
        window_blocks: key blocks each query block attends to (its own
            plus neighbors).
    """

    block: int = 64
    window_blocks: int = 3

    def __post_init__(self) -> None:
        if self.block < 1 or self.window_blocks < 1:
            raise ValueError("block and window_blocks must be positive")

    @property
    def keys_per_query(self) -> int:
        """Keys each query position scores against (unclamped)."""
        return self.block * self.window_blocks

    def effective_window_blocks(self, seq_len: int) -> int:
        """Window blocks actually used: a window wider than the sequence
        degrades to dense attention."""
        return min(self.window_blocks, math.ceil(seq_len / self.block))

    def effective_keys(self, seq_len: int) -> int:
        """Keys per query after clamping to the sequence length."""
        return min(self.keys_per_query, seq_len)

    def score_elements(self, seq_len: int, batch_heads: int) -> int:
        """Elements of the (banded) score tensor."""
        blocks = math.ceil(seq_len / self.block)
        return (batch_heads * blocks * self.block
                * self.effective_keys(seq_len))


def windowed_score_gemm(seq_len: int, d_head: int, batch_heads: int,
                        window: WindowConfig) -> GemmShape:
    """The banded Q@K^T as a batched GEMM of block tiles.

    One ``block x block x d_head`` GEMM per (query block, key block) pair;
    the batch count makes total FLOPs ``2 * B*h * n * keys_per_query *
    d_head`` — linear in ``n``.
    """
    blocks = math.ceil(seq_len / window.block)
    pairs = blocks * window.effective_window_blocks(seq_len)
    return GemmShape(m=window.block, n=window.block, k=d_head,
                     batch=batch_heads * pairs, transpose_b=True)


def windowed_context_gemm(seq_len: int, d_head: int, batch_heads: int,
                          window: WindowConfig) -> GemmShape:
    """The banded scores@V as a batched GEMM of block tiles."""
    blocks = math.ceil(seq_len / window.block)
    pairs = blocks * window.effective_window_blocks(seq_len)
    return GemmShape(m=window.block, n=d_head, k=window.block,
                     batch=batch_heads * pairs)


def windowed_attention_op_kernels(*, seq_len: int, d_head: int,
                                  batch_heads: int, window: WindowConfig,
                                  dtype: DType,
                                  layer_index: int | None = None
                                  ) -> list[Kernel]:
    """The attention-operation kernels (B-GEMMs + SM/DR stream) of one
    layer under block-local attention, forward and backward.

    Linear projections and everything outside the score computation are
    unchanged by windowing and are not emitted here.
    """
    score = windowed_score_gemm(seq_len, d_head, batch_heads, window)
    context = windowed_context_gemm(seq_len, d_head, batch_heads, window)
    elements = window.score_elements(seq_len, batch_heads)
    rows = batch_heads * seq_len

    def gemm(name: str, shape: GemmShape, phase: Phase) -> Kernel:
        from repro.ops.base import AccessPattern, OpClass
        return Kernel(name=name, op_class=OpClass.BATCHED_GEMM, phase=phase,
                      component=Component.TRANSFORMER,
                      region=Region.ATTENTION_BGEMM, flops=shape.flops,
                      bytes_read=shape.bytes_read(dtype),
                      bytes_written=shape.bytes_written(dtype), dtype=dtype,
                      access=AccessPattern.STREAMING,
                      layer_index=layer_index, gemm=shape,
                      n_elements=shape.m * shape.n * shape.batch)

    kernels = [gemm("windowed.score.fwd", score, Phase.FORWARD)]
    for name, phase in (("scale", Phase.FORWARD),):
        kernels.append(elementwise(
            f"windowed.{name}.fwd", n_elements=elements, dtype=dtype,
            phase=phase, component=Component.TRANSFORMER,
            region=Region.ATTENTION_SMDSM, flops_per_element=1.0,
            layer_index=layer_index))
    kernels.extend(softmax_kernels(
        rows=rows, row_len=window.effective_keys(seq_len), dtype=dtype,
        phase=Phase.FORWARD, layer_index=layer_index,
        name_prefix="windowed.softmax"))
    kernels.extend(dropout_forward(
        "windowed.dropout", n_elements=elements, dtype=dtype,
        component=Component.TRANSFORMER, region=Region.ATTENTION_SMDSM,
        layer_index=layer_index))
    kernels.append(gemm("windowed.context.fwd", context, Phase.FORWARD))

    # Backward: two grads per batched GEMM plus the SM/DR stream.
    kernels.append(gemm("windowed.context.bwd_act", context, Phase.BACKWARD))
    kernels.append(gemm("windowed.context.bwd_wt",
                        context.transposed(), Phase.BACKWARD))
    kernels.extend(dropout_backward(
        "windowed.dropout", n_elements=elements, dtype=dtype,
        component=Component.TRANSFORMER, region=Region.ATTENTION_SMDSM,
        layer_index=layer_index))
    kernels.extend(softmax_kernels(
        rows=rows, row_len=window.effective_keys(seq_len), dtype=dtype,
        phase=Phase.BACKWARD, layer_index=layer_index,
        name_prefix="windowed.softmax"))
    kernels.append(elementwise(
        "windowed.scale.bwd", n_elements=elements, dtype=dtype,
        phase=Phase.BACKWARD, component=Component.TRANSFORMER,
        region=Region.ATTENTION_SMDSM, flops_per_element=1.0,
        layer_index=layer_index))
    kernels.append(gemm("windowed.score.bwd_act", score, Phase.BACKWARD))
    kernels.append(gemm("windowed.score.bwd_wt",
                        score.transposed(), Phase.BACKWARD))
    return kernels
