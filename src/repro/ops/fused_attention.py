"""Cost model of kernel-fused attention (FlashAttention-style).

The eager attention pipeline the paper profiles launches seven-plus
kernels per direction and streams the ``n x n`` score tensor to DRAM
between each.  The fused kernel keeps score tiles in on-chip memory:

* forward reads Q, K, V (plus the additive mask) and writes the output
  and per-row softmax statistics — score-matrix traffic disappears;
* backward reads Q, K, V, the output, its statistics and the upstream
  gradient, recomputes score tiles on the fly (extra FLOPs), and writes
  dQ, dK, dV.

FLOPs are conserved forward (fusion saves traffic, not arithmetic) and
grow ~1.5x backward from recomputation — the classic traffic-for-compute
trade.
"""

from __future__ import annotations

from repro.ops.base import (AccessPattern, Component, DType, Kernel, OpClass,
                            Phase, Region)
from repro.ops.gemm import attention_output_gemms, attention_score_gemms

#: Softmax/scale/mask arithmetic per score element inside the fused kernel.
SOFTMAX_FLOPS_PER_SCORE = 14.0


def fused_attention_forward_kernel(*, seq_len: int, d_head: int,
                                   batch_heads: int, dtype: DType,
                                   layer_index: int | None = None
                                   ) -> Kernel:
    """The single fused forward kernel replacing score-GEMM through
    context-GEMM."""
    score = attention_score_gemms(seq_len, d_head, batch_heads)["fwd"]
    context = attention_output_gemms(seq_len, d_head, batch_heads)["fwd"]
    score_elements = batch_heads * seq_len * seq_len
    qkv_elements = 3 * batch_heads * seq_len * d_head
    out_elements = batch_heads * seq_len * d_head
    stats_elements = 2 * batch_heads * seq_len

    return Kernel(
        name="fused_attention.fwd",
        op_class=OpClass.BATCHED_GEMM,
        phase=Phase.FORWARD,
        component=Component.TRANSFORMER,
        region=Region.ATTENTION_BGEMM,
        flops=(score.flops + context.flops
               + int(SOFTMAX_FLOPS_PER_SCORE * score_elements)),
        bytes_read=(qkv_elements * dtype.bytes
                    + seq_len * seq_len * dtype.bytes),  # broadcast mask
        bytes_written=(out_elements + stats_elements) * dtype.bytes,
        dtype=dtype,
        access=AccessPattern.STREAMING,
        layer_index=layer_index,
        gemm=score,
        n_elements=out_elements,
    )


def fused_attention_backward_kernel(*, seq_len: int, d_head: int,
                                    batch_heads: int, dtype: DType,
                                    layer_index: int | None = None
                                    ) -> Kernel:
    """The fused backward kernel: recompute scores, produce dQ/dK/dV."""
    score = attention_score_gemms(seq_len, d_head, batch_heads)["fwd"]
    context = attention_output_gemms(seq_len, d_head, batch_heads)["fwd"]
    score_elements = batch_heads * seq_len * seq_len
    qkv_elements = 3 * batch_heads * seq_len * d_head
    out_elements = batch_heads * seq_len * d_head
    stats_elements = 2 * batch_heads * seq_len

    # 5 tile-GEMMs total (recomputed scores + the four gradient products)
    # vs 2 forward, plus the softmax recompute/derivative arithmetic.
    flops = (5 * score.flops // 2 + 5 * context.flops // 2
             + int(2 * SOFTMAX_FLOPS_PER_SCORE * score_elements))
    return Kernel(
        name="fused_attention.bwd",
        op_class=OpClass.BATCHED_GEMM,
        phase=Phase.BACKWARD,
        component=Component.TRANSFORMER,
        region=Region.ATTENTION_BGEMM,
        flops=flops,
        bytes_read=(qkv_elements            # Q, K, V
                    + 2 * out_elements      # output + upstream grad
                    + stats_elements) * dtype.bytes
                   + seq_len * seq_len * dtype.bytes,  # broadcast mask
        bytes_written=qkv_elements * dtype.bytes,  # dQ, dK, dV
        dtype=dtype,
        access=AccessPattern.STREAMING,
        layer_index=layer_index,
        gemm=score,
        n_elements=qkv_elements,
    )


def fused_attention_kernels(*, seq_len: int, d_head: int, batch_heads: int,
                            dtype: DType,
                            layer_index: int | None = None) -> list[Kernel]:
    """Both fused kernels of one layer's attention block."""
    return [
        fused_attention_forward_kernel(
            seq_len=seq_len, d_head=d_head, batch_heads=batch_heads,
            dtype=dtype, layer_index=layer_index),
        fused_attention_backward_kernel(
            seq_len=seq_len, d_head=d_head, batch_heads=batch_heads,
            dtype=dtype, layer_index=layer_index),
    ]
