"""Architecture-agnostic kernel and operation substrate.

Everything the paper's characterization rests on — kernel records with exact
FLOP/byte accounting, GEMM shapes (Table 2b), elementwise/reduction kernel
constructors, and arithmetic-intensity analysis (Figs. 6/7).
"""

from repro.ops.base import (AccessPattern, Component, DType, Kernel, OpClass,
                            Phase, Region)
from repro.ops.elementwise import (dropout_backward, dropout_forward,
                                   elementwise, gelu_kernels, residual_add)
from repro.ops.fused_attention import (fused_attention_backward_kernel,
                                       fused_attention_forward_kernel,
                                       fused_attention_kernels)
from repro.ops.gemm import (GemmShape, attention_output_gemms,
                            attention_score_gemms, linear_layer_gemms)
from repro.ops.intensity import (Boundedness, IntensityRecord,
                                 bandwidth_demand, group_intensity,
                                 kernel_intensity)
from repro.ops.reduction import (global_l2_norm, layernorm_kernels, reduction,
                                 softmax_kernels)
from repro.ops.windowed_attention import (WindowConfig,
                                          windowed_attention_op_kernels,
                                          windowed_context_gemm,
                                          windowed_score_gemm)

__all__ = [
    "AccessPattern", "Boundedness", "Component", "DType", "GemmShape",
    "IntensityRecord", "Kernel", "OpClass", "Phase", "Region",
    "WindowConfig", "attention_output_gemms", "attention_score_gemms",
    "bandwidth_demand", "dropout_backward", "dropout_forward", "elementwise",
    "fused_attention_backward_kernel", "fused_attention_forward_kernel",
    "fused_attention_kernels", "gelu_kernels", "global_l2_norm",
    "group_intensity", "kernel_intensity", "layernorm_kernels",
    "linear_layer_gemms", "reduction", "residual_add", "softmax_kernels",
    "windowed_attention_op_kernels", "windowed_context_gemm",
    "windowed_score_gemm",
]
