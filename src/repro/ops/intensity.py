"""Arithmetic-intensity analysis helpers (Sec. 2.6, Figs. 6 and 7).

The paper gauges whether an operation benefits from more compute or more
memory bandwidth by its ops/byte ratio relative to the *machine balance*
(peak FLOP/s divided by peak bytes/s).  These helpers compute both sides and
classify kernels, independent of any timing model.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable

from repro.ops.base import Kernel


class Boundedness(Enum):
    """Roofline classification of a kernel on a given device."""

    COMPUTE_BOUND = "compute-bound"
    MEMORY_BOUND = "memory-bound"


@dataclass(frozen=True)
class IntensityRecord:
    """Arithmetic-intensity summary of one kernel or kernel group.

    Attributes:
        label: display label (GEMM shape string or region name).
        flops: total FLOPs.
        bytes_total: total memory traffic.
        intensity: ops per byte.
    """

    label: str
    flops: int
    bytes_total: int

    @property
    def intensity(self) -> float:
        return self.flops / self.bytes_total if self.bytes_total else 0.0

    def boundedness(self, machine_balance: float) -> Boundedness:
        """Classify against a device's ops/byte machine balance."""
        if self.intensity >= machine_balance:
            return Boundedness.COMPUTE_BOUND
        return Boundedness.MEMORY_BOUND


def kernel_intensity(kernel: Kernel) -> IntensityRecord:
    """Intensity record of a single kernel."""
    return IntensityRecord(label=kernel.name, flops=kernel.flops,
                           bytes_total=kernel.bytes_total)


def group_intensity(label: str, kernels: Iterable[Kernel]) -> IntensityRecord:
    """Aggregate intensity of a kernel group (a Fig. 7 phase bar).

    Grouping sums FLOPs and bytes, which matches how the paper reports the
    intensity of multi-kernel phases like ``LAMBStage1`` or ``GeLU``.
    """
    flops = 0
    total = 0
    for kernel in kernels:
        flops += kernel.flops
        total += kernel.bytes_total
    if total == 0:
        raise ValueError(f"group {label!r} moves no bytes")
    return IntensityRecord(label=label, flops=flops, bytes_total=total)


def bandwidth_demand(kernels: Iterable[Kernel],
                     time_per_kernel: Iterable[float]) -> float:
    """Achieved bandwidth of a kernel group: total bytes / total time.

    Fig. 7 normalizes each phase's achieved bandwidth to the highest achieved
    by any BERT operation (the EW multiply); callers perform that
    normalization.

    Args:
        kernels: the kernel group.
        time_per_kernel: execution time in seconds for each kernel, in the
            same order.

    Returns:
        Bytes per second.
    """
    total_bytes = 0
    total_time = 0.0
    for kernel, seconds in zip(kernels, time_per_kernel, strict=True):
        total_bytes += kernel.bytes_total
        total_time += seconds
    if total_time <= 0:
        raise ValueError("total time must be positive")
    return total_bytes / total_time
