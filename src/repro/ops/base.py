"""Architecture-agnostic kernel records.

The paper's characterization is built on the *manifestation, size and
arithmetic behavior* of operations rather than on any particular device.
:class:`Kernel` captures exactly that: what class of computation a launched
kernel performs, how many floating-point operations it executes, how many
bytes it moves, and where in the network it belongs.  A full training
iteration is a sequence of kernels (see :mod:`repro.trace`); devices assign
time to them (see :mod:`repro.hw`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum

import numpy as np


def lanes_any(condition) -> bool:
    """Truth of a possibly lane-vectorized condition.

    The kernel constructors accept either scalar operating-point sizes or
    per-point "lane" arrays (one element per grid point; see
    :mod:`repro.grid`).  Validation predicates built from them are plain
    bools in the scalar case and boolean arrays in the lane case; this
    reduces both to one answer without slowing the scalar hot path.
    """
    if isinstance(condition, np.ndarray):
        return bool(condition.any())
    return bool(condition)


def lanes_round(value):
    """``int(round(value))`` generalized over lane arrays.

    Both branches round half to even (Python's ``round`` and NumPy's
    ``rint``), so a lane array rounds bit-identically to running the
    scalar path once per lane.
    """
    if isinstance(value, np.ndarray):
        return np.rint(value).astype(np.int64)
    return int(round(value))


class DType(Enum):
    """Element datatypes that appear in BERT training."""

    FP16 = ("fp16", 2)
    BF16 = ("bf16", 2)
    FP32 = ("fp32", 4)
    FP64 = ("fp64", 8)
    INT32 = ("int32", 4)
    INT64 = ("int64", 8)

    def __init__(self, label: str, size: int):
        self.label = label
        self.size = size

    @property
    def bytes(self) -> int:
        """Size of one element in bytes."""
        return self.size


class OpClass(Enum):
    """Computation class of a kernel, as used throughout the paper."""

    GEMM = "gemm"
    BATCHED_GEMM = "batched_gemm"
    ELEMENTWISE = "elementwise"
    REDUCTION = "reduction"
    GATHER_SCATTER = "gather_scatter"
    COMMUNICATION = "communication"

    @property
    def is_gemm(self) -> bool:
        """Whether the kernel is a (batched) matrix-matrix multiplication."""
        return self in (OpClass.GEMM, OpClass.BATCHED_GEMM)


class Phase(Enum):
    """Training-iteration phase a kernel belongs to (Sec. 3.2)."""

    FORWARD = "fwd"
    BACKWARD = "bwd"
    OPTIMIZER = "opt"
    COMMUNICATION = "comm"


class AccessPattern(Enum):
    """Coarse memory-access behavior, used by the device bandwidth model.

    ``STREAMING``: large contiguous reads/writes (elementwise kernels over
    activation tensors).  ``STRIDED``: row/column-wise reductions and
    normalizations.  ``MULTI_TENSOR``: optimizer kernels walking many
    separately-allocated parameter tensors.  ``IRREGULAR``: embedding
    gathers/scatters.
    """

    STREAMING = "streaming"
    STRIDED = "strided"
    MULTI_TENSOR = "multi_tensor"
    IRREGULAR = "irregular"


class Component(Enum):
    """Top-level network component for Fig. 3-style breakdowns."""

    EMBEDDING = "embedding"
    TRANSFORMER = "transformer"
    OUTPUT = "output"
    OPTIMIZER = "optimizer"
    COMMUNICATION = "communication"


class Region(Enum):
    """Fine-grained region labels matching the bars of Figs. 4/8/9.

    Transformer-layer kernels carry one of the first six labels; optimizer
    kernels one of the ``LAMB_*``/``OPT_*`` labels; the embedding/output
    layers their own labels.
    """

    ATTENTION_LINEAR = "attention.linear"
    ATTENTION_BGEMM = "attention.bgemm"
    ATTENTION_SMDSM = "attention.scale_mask_dropout_softmax"
    FC_GEMM = "fc.gemm"
    FC_GELU = "fc.gelu"
    DR_RC_LN = "dropout_residual_layernorm"
    EMBEDDING = "embedding"
    OUTPUT = "output"
    LOSS = "loss"
    OPT_NORM = "optimizer.grad_norm"
    OPT_STAGE1 = "optimizer.stage1"
    OPT_STAGE2 = "optimizer.stage2"
    COMM_ALLREDUCE = "communication.allreduce"

    @property
    def is_attention(self) -> bool:
        return self in (Region.ATTENTION_LINEAR, Region.ATTENTION_BGEMM,
                        Region.ATTENTION_SMDSM)

    @property
    def is_fc(self) -> bool:
        return self in (Region.FC_GEMM, Region.FC_GELU)

    @property
    def is_optimizer(self) -> bool:
        return self in (Region.OPT_NORM, Region.OPT_STAGE1, Region.OPT_STAGE2)


@dataclass(frozen=True)
class Kernel:
    """One launched kernel of a training iteration.

    Attributes:
        name: descriptive kernel name (e.g. ``"linear_q.fwd.gemm"``).
        op_class: computation class.
        phase: FWD / BWD / optimizer / communication.
        component: top-level network component for coarse breakdowns.
        region: fine-grained region for hierarchical breakdowns.
        flops: floating-point operations executed (multiply-accumulate = 2).
        bytes_read: bytes read from device memory, assuming no inter-kernel
            caching (each kernel streams its operands from HBM — the paper's
            fusion analysis relies on exactly this property).
        bytes_written: bytes written to device memory.
        dtype: element type of the kernel's main operands.
        access: memory-access pattern for the bandwidth model.
        layer_index: encoder layer the kernel belongs to, or ``None`` for
            embedding/output/optimizer-global kernels.
        gemm: shape record when ``op_class.is_gemm``.
        fusion_group: label tying together kernels that a fusion pass may
            merge (producer-consumer elementwise chains).
        n_elements: element count of the kernel's principal tensor (the
            one flowing producer-to-consumer through a fusion group); lets
            fusion passes compute exactly how much intermediate traffic a
            merge eliminates.
    """

    name: str
    op_class: OpClass
    phase: Phase
    component: Component
    region: Region
    flops: int
    bytes_read: int
    bytes_written: int
    dtype: DType = DType.FP32
    access: AccessPattern = AccessPattern.STREAMING
    layer_index: int | None = None
    gemm: "object | None" = None
    fusion_group: str | None = field(default=None)
    n_elements: int = 0

    def __post_init__(self) -> None:
        if (lanes_any(self.flops < 0) or lanes_any(self.bytes_read < 0)
                or lanes_any(self.bytes_written < 0)):
            raise ValueError(f"kernel {self.name!r} has negative cost fields")

    @property
    def bytes_total(self) -> int:
        """Total device-memory traffic of the kernel."""
        return self.bytes_read + self.bytes_written

    @property
    def arithmetic_intensity(self) -> float:
        """Operations per byte of memory traffic (Sec. 2.6)."""
        if self.bytes_total == 0:
            return 0.0
        return self.flops / self.bytes_total

    def with_layer(self, layer_index: int) -> "Kernel":
        """Return a copy attributed to a specific encoder layer."""
        return replace(self, layer_index=layer_index)

    def renamed(self, name: str) -> "Kernel":
        """Return a copy with a different name."""
        return replace(self, name=name)
