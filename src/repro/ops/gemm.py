"""GEMM shape records and cost math.

The paper represents a matrix as ``MxN``, a GEMM as ``MxNxK`` (output
``M x N``, contraction over ``K``) and annotates each with transpose flags
and an optional batch count (Fig. 6's labels are
``transposeA, transposeB, M, N, K, [batch]``).  :class:`GemmShape` mirrors
that representation exactly, and supplies the FLOP and byte counts every
other subsystem consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ops.base import DType, lanes_any


@dataclass(frozen=True)
class GemmShape:
    """An ``M x N x K`` (batched) GEMM.

    ``C[M, N] (+)= A[M, K] @ B[K, N]``, repeated ``batch`` times for batched
    GEMMs.  Transpose flags describe the *storage* layout of A and B, which
    matters for achieved bandwidth on real devices but not for FLOP/byte
    totals.

    Attributes:
        m, n, k: GEMM dimensions.
        batch: number of independent GEMMs launched as one batched kernel.
        transpose_a, transpose_b: whether A / B are stored transposed.
        accumulate: whether C is read-modify-written (``beta != 0``), as in
            gradient accumulation into weight gradients.
    """

    m: int
    n: int
    k: int
    batch: int = 1
    transpose_a: bool = False
    transpose_b: bool = False
    accumulate: bool = False

    def __post_init__(self) -> None:
        if any(lanes_any(dim <= 0)
               for dim in (self.m, self.n, self.k, self.batch)):
            raise ValueError(f"GEMM dims must be positive, got {self}")

    # ------------------------------------------------------------------ cost
    @property
    def flops(self) -> int:
        """Multiply-add FLOPs (2 per MAC) across the whole batch."""
        return 2 * self.m * self.n * self.k * self.batch

    def elements(self) -> int:
        """Total elements touched: A + B + C, across the batch."""
        per = self.m * self.k + self.k * self.n + self.m * self.n
        return per * self.batch

    def bytes_read(self, dtype: DType) -> int:
        """Bytes read: both operands, plus C when accumulating."""
        per = self.m * self.k + self.k * self.n
        if self.accumulate:
            per += self.m * self.n
        return per * self.batch * dtype.bytes

    def bytes_written(self, dtype: DType) -> int:
        """Bytes written: the output matrix C."""
        return self.m * self.n * self.batch * dtype.bytes

    def bytes_total(self, dtype: DType) -> int:
        """Total minimum memory traffic (each operand streamed once)."""
        return self.bytes_read(dtype) + self.bytes_written(dtype)

    def arithmetic_intensity(self, dtype: DType) -> float:
        """Ops per byte at minimum traffic (the paper's Fig. 6 metric)."""
        return self.flops / self.bytes_total(dtype)

    # ----------------------------------------------------------------- labels
    @property
    def label(self) -> str:
        """Fig. 6-style label: ``tA, tB, M, N, K[, batch]``."""
        flags = f"{'T' if self.transpose_a else 'N'}{'T' if self.transpose_b else 'N'}"
        core = f"{flags},{self.m},{self.n},{self.k}"
        return f"{core},[{self.batch}]" if self.batch > 1 else core

    def transposed(self) -> "GemmShape":
        """Shape of the mathematically transposed product (C^T = B^T A^T)."""
        return GemmShape(m=self.n, n=self.m, k=self.k, batch=self.batch,
                         transpose_a=not self.transpose_b,
                         transpose_b=not self.transpose_a,
                         accumulate=self.accumulate)


def linear_layer_gemms(d_in: int, d_out: int, tokens: int) -> dict[str, GemmShape]:
    """The three GEMMs of one linear (dense) layer under training.

    Following Table 2b's convention (output-stationary ``M x N x K`` with the
    token count ``n*B`` appearing as the N dimension in FWD):

    * forward:            ``d_out x tokens x d_in``
    * backward activation: ``d_in x tokens x d_out``
    * backward weight:     ``d_in x d_out x tokens`` (accumulated)

    Args:
        d_in: input feature dimension (GEMM ``K`` in FWD).
        d_out: output feature dimension (GEMM ``M`` in FWD).
        tokens: total token count ``n * B``.

    Returns:
        Mapping with keys ``"fwd"``, ``"bwd_act"``, ``"bwd_wt"``.
    """
    return {
        "fwd": GemmShape(m=d_out, n=tokens, k=d_in),
        "bwd_act": GemmShape(m=d_in, n=tokens, k=d_out, transpose_a=True),
        "bwd_wt": GemmShape(m=d_in, n=d_out, k=tokens, transpose_b=True,
                            accumulate=True),
    }


def attention_score_gemms(seq_len: int, d_head: int,
                          batch_heads: int) -> dict[str, GemmShape]:
    """Batched GEMMs of the attention-score computation (Q @ K^T).

    Table 2b row "Attn. Score": forward is ``n x n x d_model/h`` with batch
    ``B*h``; the two backward products exchange the roles of the operands.
    """
    return {
        "fwd": GemmShape(m=seq_len, n=seq_len, k=d_head, batch=batch_heads,
                         transpose_b=True),
        "bwd_act": GemmShape(m=seq_len, n=d_head, k=seq_len,
                             batch=batch_heads),
        "bwd_wt": GemmShape(m=d_head, n=seq_len, k=seq_len,
                            batch=batch_heads, transpose_a=True),
    }


def attention_output_gemms(seq_len: int, d_head: int,
                           batch_heads: int) -> dict[str, GemmShape]:
    """Batched GEMMs of the attention-context computation (scores @ V).

    Table 2b row "Attn. O/p": forward is ``d_model/h x n x n`` with batch
    ``B*h``.
    """
    return {
        "fwd": GemmShape(m=d_head, n=seq_len, k=seq_len, batch=batch_heads),
        "bwd_act": GemmShape(m=d_head, n=seq_len, k=seq_len,
                             batch=batch_heads, transpose_b=True),
        "bwd_wt": GemmShape(m=seq_len, n=seq_len, k=d_head,
                            batch=batch_heads, transpose_a=True),
    }
