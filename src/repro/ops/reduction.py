"""Reduction-style kernels: softmax, LayerNorm, norms and loss reductions.

These operations reduce along rows/columns and then apply a few elementwise
steps; the paper classifies them as memory-bound with arithmetic intensity
barely above one (Sec. 3.2.3, Fig. 7).
"""

from __future__ import annotations

from repro.ops.base import (AccessPattern, Component, DType, Kernel, OpClass,
                            Phase, Region, lanes_any, lanes_round)


def reduction(name: str, *, n_elements: int, dtype: DType, phase: Phase,
              component: Component, region: Region,
              inputs: int = 1, outputs: int = 1,
              flops_per_element: float = 2.0,
              reduced_elements: int = 1,
              layer_index: int | None = None,
              fusion_group: str | None = None) -> Kernel:
    """Build a reduction kernel.

    Args:
        n_elements: elements of the tensor being reduced over.
        reduced_elements: elements of the (small) reduction output.
        inputs/outputs: tensors of ``n_elements`` streamed in/out
            (``outputs=0`` for pure reductions that only emit statistics).
        flops_per_element: arithmetic per input element (a sum costs ~1, a
            mean+variance pass ~3, softmax's exp ~8).

    Returns:
        A :class:`Kernel` with ``op_class = REDUCTION`` and strided access.
    """
    if lanes_any(n_elements <= 0):
        raise ValueError("n_elements must be positive")
    eb = dtype.bytes
    return Kernel(
        name=name,
        op_class=OpClass.REDUCTION,
        phase=phase,
        component=component,
        region=region,
        flops=lanes_round(flops_per_element * n_elements),
        bytes_read=inputs * n_elements * eb,
        bytes_written=outputs * n_elements * eb + reduced_elements * eb,
        dtype=dtype,
        access=AccessPattern.STRIDED,
        layer_index=layer_index,
        fusion_group=fusion_group,
        n_elements=n_elements,
    )


def softmax_kernels(*, rows: int, row_len: int, dtype: DType, phase: Phase,
                    region: Region = Region.ATTENTION_SMDSM,
                    component: Component = Component.TRANSFORMER,
                    layer_index: int | None = None,
                    name_prefix: str = "softmax",
                    fusion_group: str | None = None) -> list[Kernel]:
    """Softmax over ``rows`` rows of length ``row_len``.

    As in the frameworks the paper profiles, the numerically-stable
    softmax launches as one kernel per direction: forward keeps a row in
    registers/LDS across the max/exp-sum/normalize passes (one read, one
    write of the tensor); backward reads the saved output and the incoming
    gradient, reduces the per-row dot product internally, and writes the
    input gradient.
    """
    n = rows * row_len
    if phase is Phase.FORWARD:
        return [
            reduction(f"{name_prefix}.fwd", n_elements=n, dtype=dtype,
                      phase=phase, component=component,
                      region=region, inputs=1, outputs=1,
                      flops_per_element=12.0, reduced_elements=2 * rows,
                      layer_index=layer_index, fusion_group=fusion_group),
        ]
    return [
        reduction(f"{name_prefix}.bwd", n_elements=n, dtype=dtype,
                  phase=phase, component=component, region=region,
                  inputs=2, outputs=1, flops_per_element=5.0,
                  reduced_elements=rows, layer_index=layer_index,
                  fusion_group=fusion_group),
    ]


#: Eager (unfused) LayerNorm forward decomposition used by Fig. 12's fusion
#: study — every arithmetic step of the textbook formula as its own kernel,
#: each materializing its result to device memory.
LAYERNORM_UNFUSED_FORWARD_STEPS = ("mean", "center", "square", "variance",
                                   "add_eps", "rsqrt", "normalize", "gain",
                                   "bias")

#: Additional backward-only steps of the eager decomposition.
LAYERNORM_UNFUSED_BACKWARD_EXTRA = ("grad_gain", "grad_center",
                                    "grad_combine", "grad_params")


def layernorm_kernels(*, rows: int, row_len: int, dtype: DType, phase: Phase,
                      fused: bool = True,
                      component: Component = Component.TRANSFORMER,
                      region: Region = Region.DR_RC_LN,
                      layer_index: int | None = None,
                      name_prefix: str = "layernorm",
                      fusion_group: str | None = None) -> list[Kernel]:
    """LayerNorm kernels over ``rows x row_len``.

    ``fused=True`` is the framework's optimized implementation: one forward
    kernel and two backward kernels (input gradient; gain/bias gradient).
    ``fused=False`` is the eager decomposition of
    :data:`LAYERNORM_UNFUSED_FORWARD_STEPS`, each step a separate kernel —
    the 6-8x kernel-count gap the paper measures in Fig. 12(a).
    """
    n = rows * row_len
    if fused:
        if phase is Phase.FORWARD:
            return [reduction(
                f"{name_prefix}.fwd", n_elements=n, dtype=dtype, phase=phase,
                component=component, region=region, inputs=1, outputs=1,
                flops_per_element=6.0, reduced_elements=2 * rows,
                layer_index=layer_index, fusion_group=fusion_group)]
        return [
            reduction(f"{name_prefix}.bwd.input", n_elements=n, dtype=dtype,
                      phase=phase, component=component, region=region,
                      inputs=2, outputs=1, flops_per_element=8.0,
                      reduced_elements=2 * rows, layer_index=layer_index,
                      fusion_group=fusion_group),
            reduction(f"{name_prefix}.bwd.params", n_elements=n, dtype=dtype,
                      phase=phase, component=component, region=region,
                      inputs=2, outputs=0, flops_per_element=2.0,
                      reduced_elements=2 * row_len, layer_index=layer_index,
                      fusion_group=fusion_group),
        ]

    kernels = []
    steps = (LAYERNORM_UNFUSED_FORWARD_STEPS if phase is Phase.FORWARD
             else LAYERNORM_UNFUSED_FORWARD_STEPS
             + LAYERNORM_UNFUSED_BACKWARD_EXTRA)
    two_input_steps = ("center", "normalize", "gain", "bias", "grad_gain",
                       "grad_center", "grad_combine")
    for step in steps:
        is_reduce = step in ("mean", "variance", "grad_params")
        kernels.append(reduction(
            f"{name_prefix}.{phase.value}.{step}", n_elements=n, dtype=dtype,
            phase=phase, component=component, region=region,
            inputs=2 if step in two_input_steps else 1,
            outputs=0 if is_reduce else 1,
            flops_per_element=2.0,
            reduced_elements=rows if is_reduce else 1,
            layer_index=layer_index, fusion_group=fusion_group))
    return kernels


def global_l2_norm(name: str, *, n_elements: int, dtype: DType,
                   component: Component = Component.OPTIMIZER,
                   region: Region = Region.OPT_NORM) -> Kernel:
    """L2-norm reduction across all model gradients.

    LAMB must normalize across every layer's gradients before any parameter
    can be updated, serializing the update against the whole backprop
    (Sec. 3.2.3, Takeaway 7 discussion).
    """
    return reduction(name, n_elements=n_elements, dtype=dtype,
                     phase=Phase.OPTIMIZER, component=component, region=region,
                     inputs=1, outputs=0, flops_per_element=2.0,
                     reduced_elements=1)
