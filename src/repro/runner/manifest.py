"""JSON run manifests and the ``repro report`` summary.

Every ``repro run`` invocation records what happened — per-experiment
wall-clock, cache hit/miss counts, kernel counts, paper-band verdicts and
failures — into ``runs/<timestamp>.json``.  The manifest is the durable
baseline future performance PRs are measured against: diff two manifests
and you know exactly which figures got faster and whether the cache did
the work.

The directory defaults to ``./runs`` and can be moved with the
``REPRO_RUNS_DIR`` environment variable.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.obs import metrics as metrics_module
from repro.obs import spans as spans_module
from repro.runner.cache import CacheStats
from repro.runner.executor import ExperimentResult

#: Environment variable overriding the manifest directory.
RUNS_DIR_ENV = "REPRO_RUNS_DIR"

#: Bumped when the manifest layout changes incompatibly.  Version 2 added
#: the additive ``observability`` section (merged span summary, metrics
#: snapshot, derived hit rates) and per-experiment ``spans``/``metrics``;
#: version-1 readers that ignore unknown keys still parse it.
SCHEMA_VERSION = 2


def runs_dir() -> Path:
    """The active manifest directory (``REPRO_RUNS_DIR`` or ``./runs``)."""
    return Path(os.environ.get(RUNS_DIR_ENV, "runs"))


def build_observability(results: list[ExperimentResult]) -> dict:
    """Run-level observability section: spans, metrics, derived rates.

    Per-experiment span summaries and metric deltas (recorded by
    :func:`repro.runner.executor.run_one`, including inside worker
    processes) merge into one run-wide view, with ``<metric>.hit_rate``
    derived for every ``result=hit|miss``-labeled counter — the result
    cache, the ``run_point`` resolutions and the GEMM-time memo.
    """
    merged_metrics = metrics_module.merge_snapshots(
        [r.metrics for r in results if r.metrics])
    return {
        "spans": spans_module.merge_span_summaries(
            [r.spans for r in results if r.spans]),
        "metrics": merged_metrics,
        "hit_rates": metrics_module.hit_rates(merged_metrics),
    }


def build_manifest(results: list[ExperimentResult], *, jobs: int,
                   command: str, cache_stats: CacheStats | None = None,
                   cache_dir: str = "") -> dict:
    """Assemble the manifest payload for one batch of results."""
    totals = {
        "experiments": len(results),
        "failed": sum(1 for r in results if not r.ok),
        "duration_s": round(sum(r.duration_s for r in results), 6),
        "cache_hits": sum(r.counters.get("cache_hits", 0)
                          for r in results),
        "cache_misses": sum(r.counters.get("cache_misses", 0)
                            for r in results),
        "kernels": sum(r.counters.get("kernels", 0) for r in results),
    }
    return {
        "schema": SCHEMA_VERSION,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "command": command,
        "jobs": jobs,
        "cache_dir": cache_dir,
        "cache_stats": cache_stats.as_dict() if cache_stats else None,
        "totals": totals,
        "observability": build_observability(results),
        "experiments": [r.as_dict() for r in results],
    }


def write_manifest(manifest: dict, directory: Path | None = None) -> Path:
    """Write ``manifest`` to ``<runs>/<timestamp>.json``; returns the path.

    Timestamps collide when invocations land within the same second, so
    names carry a zero-padded sequence suffix — lexicographic order is
    chronological order, which :func:`latest_manifest_path` relies on.
    """
    directory = directory if directory is not None else runs_dir()
    directory.mkdir(parents=True, exist_ok=True)
    stamp = time.strftime("%Y%m%d-%H%M%S")
    for sequence in range(1000):
        path = directory / f"{stamp}-{sequence:03d}.json"
        if not path.exists():
            break
    path.write_text(json.dumps(manifest, indent=2) + "\n")
    return path


def latest_manifest_path(directory: Path | None = None) -> Path | None:
    """The most recent manifest in ``directory``, or ``None``."""
    directory = directory if directory is not None else runs_dir()
    if not directory.is_dir():
        return None
    manifests = sorted(directory.glob("*.json"))
    return manifests[-1] if manifests else None


def load_manifest(path: Path) -> dict:
    """Parse one manifest file."""
    return json.loads(Path(path).read_text())


def resume_ids(manifest: dict, requested: list[str]) -> list[str]:
    """The subset of ``requested`` a resumed run still has to execute.

    An experiment is *done* when the manifest records it with ``ok``;
    failed and missing experiments are returned, in request order — the
    contract behind ``repro run all --resume``: re-execute only what the
    previous run did not complete.
    """
    completed = {entry.get("experiment_id")
                 for entry in manifest.get("experiments", [])
                 if entry.get("ok")}
    return [eid for eid in requested if eid not in completed]


def render_spans(manifest: dict) -> str:
    """Span summary of one manifest (the body of ``repro spans``)."""
    from repro.report.tables import format_table

    observability = manifest.get("observability") or {}
    span_summary = observability.get("spans") or {}
    if not span_summary:
        return ("no spans recorded in this manifest "
                "(run `repro run <experiment>` first)")
    ordered = sorted(span_summary.items(),
                     key=lambda item: item[1].get("total_s", 0.0),
                     reverse=True)
    rows = [(name, entry.get("count", 0),
             f"{entry.get('total_s', 0.0) * 1e3:.2f} ms",
             f"{entry.get('max_s', 0.0) * 1e3:.2f} ms")
            for name, entry in ordered]
    table = format_table(("span", "count", "total", "max"), rows)
    total_s = sum(e.get("total_s", 0.0) for e in span_summary.values())
    return (f"spans of run {manifest.get('created_utc', '?')}  "
            f"command={manifest.get('command', '?')!r}\n\n{table}\n\n"
            f"{len(span_summary)} span names, "
            f"{sum(e.get('count', 0) for e in span_summary.values())} spans, "
            f"{total_s * 1e3:.2f} ms total traced time")


def render_stats(manifest: dict) -> str:
    """Metrics summary of one manifest (the body of ``repro stats``)."""
    from repro.report.tables import format_table

    observability = manifest.get("observability") or {}
    snapshot = observability.get("metrics") or {}
    if not snapshot:
        return ("no metrics recorded in this manifest "
                "(run `repro run <experiment>` first)")
    rows = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        for label_key in sorted(entry.get("series", {})):
            value = entry["series"][label_key]
            if entry.get("kind") == "histogram":
                mean = value["sum"] / value["count"] if value["count"] else 0
                shown = (f"count={value['count']} mean={mean:.4g} "
                         f"min={value['min']:.4g} max={value['max']:.4g}")
                quantiles = " ".join(
                    f"{name}={value[name]:.4g}"
                    for name in ("p50", "p90", "p99") if name in value)
                if quantiles:
                    shown += f" {quantiles}"
            else:
                shown = value
            rows.append((name, entry.get("kind", "?"), label_key or "-",
                         shown))
    table = format_table(("metric", "kind", "labels", "value"), rows)
    rates = observability.get("hit_rates") or {}
    rate_lines = "\n".join(f"  {name}: {value:.1%}"
                           for name, value in sorted(rates.items()))
    footer = f"\nhit rates:\n{rate_lines}" if rate_lines else ""
    return (f"metrics of run {manifest.get('created_utc', '?')}  "
            f"command={manifest.get('command', '?')!r}\n\n{table}{footer}")


def render_manifest(manifest: dict) -> str:
    """Human summary of one manifest (the body of ``repro report``)."""
    from repro.report.tables import format_table

    rows = []
    for entry in manifest["experiments"]:
        bands = entry.get("bands")
        band_text = ("-" if bands is None
                     else f"{bands['passed']}/{bands['passed'] + bands['failed']} pass")
        if not entry["ok"]:
            status = "FAILED"
        elif entry.get("experiment_cached"):
            status = "ok (cached)"
        else:
            status = "ok"
        rows.append((
            entry["experiment_id"],
            status,
            f"{entry['duration_s'] * 1e3:.1f} ms",
            entry.get("cache_hits", 0),
            entry.get("cache_misses", 0),
            entry.get("kernels", 0),
            band_text,
        ))
    table = format_table(
        ("experiment", "status", "wall-clock", "hits", "misses",
         "kernels", "bands"), rows)
    totals = manifest["totals"]
    header = (f"run {manifest['created_utc']}  "
              f"command={manifest['command']!r}  jobs={manifest['jobs']}")
    footer = (f"{totals['experiments']} experiments, "
              f"{totals['failed']} failed, "
              f"{totals['duration_s']:.2f} s total, "
              f"cache {totals['cache_hits']} hits / "
              f"{totals['cache_misses']} misses, "
              f"{totals['kernels']} kernels profiled")
    return f"{header}\n\n{table}\n\n{footer}"
