"""Content-addressed, disk-backed trace/profile cache.

Several figures evaluate the same operating points; the seed repository
memoized them with ``functools.lru_cache``, which had two failure modes:
the cache died with the process, and every caller received the *same
mutable* ``Trace``/``Profile`` objects, so a downstream transform mutating
``trace.kernels`` silently corrupted every later figure.

This cache fixes both.  Entries are pickled ``(Trace, Profile)`` pairs —
serialized in their compact columnar form (``KernelTable`` arrays plus a
times array; see ``Trace.__getstate__``/``Profile.__getstate__``) rather
than as per-kernel object graphs, so entries are small and loads stay
lazy — stored under a key that is a SHA-256 over

* the :class:`~repro.config.BertConfig` fields,
* the :class:`~repro.config.TrainingConfig` fields,
* the device fingerprint (every parameter of the
  :class:`~repro.hw.device.DeviceModel`), and
* the code version (a digest of the source files that determine traces
  and profiles),

so a change to any of them simply misses instead of serving stale data.

Concurrency invariant (relied on by the profiling server's worker pool
as well as ``repro run --jobs N``): writes are atomic — each
``put_payload`` pickles into a private temp file in the destination
directory and publishes it with ``os.replace``, which POSIX guarantees
atomic within a filesystem — so readers of the same key observe either
the old complete entry, the new complete entry, or a miss; never a torn
file.  Two racing writers of one key both write valid entries and the
last ``replace`` wins, which is harmless because entries are
content-addressed: every writer of a key serializes the *same* value.
The per-instance :class:`CacheStats` counters are guarded by a lock so
concurrent threads cannot lose increments.

Integrity: every entry is framed as ``RBC1 + CRC32(body) + body`` so a
corrupt or truncated entry — torn by a crash, bit-rotted on disk, or
injected by the ``cache.corrupt`` fault site — is *detected* on ``get``
before the pickle ever reaches the unpickler.  A bad entry is moved to
``<root>/corrupt/`` (quarantined for post-mortem rather than deleted),
counted (``stats.corrupt`` and the ``result=corrupt`` label of
``result_cache.requests``), and reported as a miss, so the caller
recomputes and rewrites a clean entry instead of crashing the run.
Unframed entries from older versions still load (and still quarantine
when their pickle is unreadable).

The cache directory defaults to ``~/.cache/repro-bert`` and can be moved
with the ``REPRO_CACHE_DIR`` environment variable or
:func:`configure_cache`; ``repro cache clear`` (or deleting the
directory) empties it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import struct
import tempfile
import threading
import zlib
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path

from repro.config import BertConfig, TrainingConfig
from repro.faults import sites as fault_sites
from repro.hw.device import DeviceModel
from repro.obs import metrics, spans
from repro.profiler.profiler import Profile
from repro.trace.builder import Trace

#: Registry view of the cache counters CacheStats also tracks, labeled
#: ``result=hit|miss|eviction`` so ``repro stats`` can derive hit rates.
_CACHE_REQUESTS = metrics.counter(
    "result_cache.requests", "disk-cache reads by result")
_CACHE_WRITES = metrics.counter(
    "result_cache.writes", "disk-cache entries written")

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Entry framing: magic + big-endian CRC32 of the pickled body.
ENTRY_MAGIC = b"RBC1"
_HEADER = struct.Struct(">4sI")

#: Subdirectory (under the cache root) holding quarantined entries.
QUARANTINE_DIR = "corrupt"

#: Packages whose source determines a (trace, profile) result.  A change to
#: any file under them rotates the cache key, so stale entries from an older
#: code version can never be served.
_CODE_FINGERPRINT_PARTS = ("config.py", "ops", "tensor", "trace", "hw",
                           "profiler", "fusion", "memoryplan", "distributed",
                           "nmc", "grid")


def default_cache_dir() -> Path:
    """The active cache directory (``REPRO_CACHE_DIR`` or the user cache)."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-bert"


def _jsonable(value):
    """Recursively convert configs/devices into JSON-stable structures."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _jsonable(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, Enum):
        return value.value
    if isinstance(value, dict):
        return {str(_jsonable(k)): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def _digest(payload) -> str:
    text = json.dumps(_jsonable(payload), sort_keys=True, default=str)
    return hashlib.sha256(text.encode()).hexdigest()


_code_fingerprint_cache: str | None = None
_full_fingerprint_cache: str | None = None


def _hash_sources(parts: tuple[str, ...]) -> str:
    package_root = Path(__file__).resolve().parent.parent
    sha = hashlib.sha256()
    for part in parts:
        path = package_root / part
        files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for source in files:
            sha.update(str(source.relative_to(package_root)).encode())
            sha.update(source.read_bytes())
    return sha.hexdigest()


def code_fingerprint() -> str:
    """Digest of the source files that determine traces and profiles."""
    global _code_fingerprint_cache
    if _code_fingerprint_cache is None:
        _code_fingerprint_cache = _hash_sources(_CODE_FINGERPRINT_PARTS)
    return _code_fingerprint_cache


def full_code_fingerprint() -> str:
    """Digest of the entire ``repro`` package source.

    Experiment *results* depend on every layer (trace, device, fusion,
    distributed models, the experiment modules themselves), so their
    cache entries key on the whole package: touch any source file and
    every cached result misses.
    """
    global _full_fingerprint_cache
    if _full_fingerprint_cache is None:
        _full_fingerprint_cache = _hash_sources((".",))
    return _full_fingerprint_cache


def device_fingerprint(device: DeviceModel) -> str:
    """Digest of every performance parameter of ``device``."""
    return _digest(device)


@dataclass
class CacheStats:
    """Counters for one cache instance.

    Attributes:
        hits: entries served from disk.
        misses: keys that had to be recomputed.
        evictions: corrupted/unreadable entries that left the cache.
        corrupt: entries that failed the CRC/pickle check and were
            quarantined (a subset of ``evictions``).
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    corrupt: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "corrupt": self.corrupt}


@dataclass
class ResultCache:
    """Disk-backed cache of ``(Trace, Profile)`` pairs.

    Attributes:
        root: directory holding the entries (created lazily).
        stats: hit/miss counters for this instance.
    """

    root: Path = field(default_factory=default_cache_dir)
    stats: CacheStats = field(default_factory=CacheStats)
    #: Guards ``stats``: entry I/O itself needs no lock (atomic rename —
    #: see the module docstring), but ``int +=`` is not atomic across
    #: threads and the server's worker pool shares one instance.
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def key(self, model: BertConfig, training: TrainingConfig,
            device: DeviceModel, *, pipeline: str = "") -> str:
        """Content address of one operating point on one device.

        ``pipeline`` is the :attr:`PassManager.signature` of the trace
        rewrites applied after generation (empty = raw trace), so fused /
        checkpointed / windowed variants of the same point get distinct
        entries.  Omitting it keeps raw-point keys identical to before
        the pass pipeline existed.
        """
        payload = {
            "model": model,
            "training": training,
            "device": device_fingerprint(device),
            "code": code_fingerprint(),
        }
        if pipeline:
            payload["pipeline"] = pipeline
        return _digest(payload)

    def grid_key(self, points, device: DeviceModel, *,
                 pipeline: str = "") -> str:
        """Content address of a whole profiling grid on one device.

        ``points`` iterates ``(model, training)`` pairs; their *order* is
        part of the signature because the cached summary rows come back
        positionally.  One entry per grid keeps a 1000-point sweep at one
        disk read instead of one per point.
        """
        payload = {
            "grid": [{"model": model, "training": training}
                     for model, training in points],
            "device": device_fingerprint(device),
            "code": code_fingerprint(),
        }
        if pipeline:
            payload["pipeline"] = pipeline
        return _digest(payload)

    def experiment_key(self, experiment_id: str, description: str) -> str:
        """Content address of one registered experiment's result."""
        return _digest({
            "experiment": experiment_id,
            "description": description,
            "code": full_code_fingerprint(),
        })

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry to ``<root>/corrupt/`` for post-mortem.

        The ``.corrupt`` suffix keeps quarantined files out of
        :meth:`entries`; quarantine failing (another reader won the
        race, read-only filesystem) degrades to a plain unlink.
        """
        target = self.root / QUARANTINE_DIR / f"{path.stem}.corrupt"
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass

    def _record_corrupt(self, path: Path) -> None:
        with self._lock:
            self.stats.corrupt += 1
            self.stats.evictions += 1
            self.stats.misses += 1
        _CACHE_REQUESTS.inc(result="miss")
        _CACHE_REQUESTS.inc(result="eviction")
        _CACHE_REQUESTS.inc(result="corrupt")
        spans.annotate(result="corrupt")
        self._quarantine(path)

    def get_payload(self, key: str):
        """Load any pickled entry; ``None`` on miss/corruption.

        An entry whose CRC32 frame does not verify — or whose pickle is
        unreadable — is quarantined and reported as a miss: corruption
        costs a recompute, never a crash.
        """
        path = self._path(key)
        with spans.span("cache.get", key=key[:12]):
            try:
                data = path.read_bytes()
            except FileNotFoundError:
                with self._lock:
                    self.stats.misses += 1
                _CACHE_REQUESTS.inc(result="miss")
                spans.annotate(result="miss")
                return None
            except OSError:
                self._record_corrupt(path)
                return None
            data = fault_sites.corrupt_bytes("cache.corrupt", data)
            if data.startswith(ENTRY_MAGIC):
                if len(data) < _HEADER.size:
                    self._record_corrupt(path)
                    return None
                _, checksum = _HEADER.unpack_from(data)
                body = data[_HEADER.size:]
                if zlib.crc32(body) != checksum:
                    self._record_corrupt(path)
                    return None
            else:
                body = data  # unframed entry from an older version
            try:
                payload = pickle.loads(body)
            except Exception:
                # A frame-valid pickle failing to load means an
                # incompatible version, not rot; quarantine either way.
                self._record_corrupt(path)
                return None
            with self._lock:
                self.stats.hits += 1
            _CACHE_REQUESTS.inc(result="hit")
            spans.annotate(result="hit")
            return payload

    def put_payload(self, key: str, payload) -> None:
        """Store any picklable entry atomically (concurrency-safe)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle, tmp_name = tempfile.mkstemp(dir=path.parent,
                                            suffix=".tmp")
        with spans.span("cache.put", key=key[:12]):
            try:
                body = pickle.dumps(payload,
                                    protocol=pickle.HIGHEST_PROTOCOL)
                with os.fdopen(handle, "wb") as tmp:
                    tmp.write(_HEADER.pack(ENTRY_MAGIC, zlib.crc32(body)))
                    tmp.write(body)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
            _CACHE_WRITES.inc()
            if spans.get_tracer().enabled:  # stat only when traced
                spans.annotate(bytes=path.stat().st_size)

    def get(self, key: str) -> tuple[Trace, Profile] | None:
        """Load a ``(Trace, Profile)`` entry; ``None`` on miss/corruption."""
        payload = self.get_payload(key)
        if payload is None:
            return None
        trace, profile = payload
        return trace, profile

    def put(self, key: str, trace: Trace, profile: Profile) -> None:
        """Store a ``(Trace, Profile)`` entry atomically."""
        self.put_payload(key, (trace, profile))

    # ------------------------------------------------------------ management
    def entries(self) -> list[Path]:
        """All entry files currently on disk."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.pkl"))

    def size_bytes(self) -> int:
        """Total bytes of all entries."""
        return sum(p.stat().st_size for p in self.entries())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


# The process-wide cache used by ``repro.experiments.common.run_point``.
_active: ResultCache | None = None


def get_cache() -> ResultCache:
    """The process-wide cache instance (created on first use)."""
    global _active
    if _active is None:
        _active = ResultCache()
    return _active


def configure_cache(root: Path | str) -> ResultCache:
    """Point the process-wide cache at ``root`` (used by tests/tools)."""
    global _active
    _active = ResultCache(root=Path(root))
    return _active


def reset_cache() -> None:
    """Forget the process-wide instance (it re-reads the environment)."""
    global _active
    _active = None
