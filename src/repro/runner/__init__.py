"""Experiment-runner subsystem: cache, parallel executor, telemetry.

The paper's evaluation is a battery of per-figure experiments; this package
makes replaying that battery fast and trustworthy:

* :mod:`repro.runner.cache` — a content-addressed, disk-backed cache of
  ``(Trace, Profile)`` pairs keyed on the model/training configs, the
  device fingerprint and the code version, shared by every experiment and
  surviving across invocations;
* :mod:`repro.runner.executor` — runs a batch of registered experiments,
  optionally across processes, with per-experiment isolation so one
  failure cannot abort the batch;
* :mod:`repro.runner.telemetry` — per-experiment counters (cache hits,
  kernels profiled) collected while an experiment runs;
* :mod:`repro.runner.manifest` — JSON run manifests under ``runs/`` and
  the ``repro report`` summary.
"""

from repro.runner.cache import (CacheStats, ResultCache, configure_cache,
                                default_cache_dir, get_cache, reset_cache)
from repro.runner.executor import ExperimentResult, run_experiments
from repro.runner.manifest import (latest_manifest_path, load_manifest,
                                   render_manifest, write_manifest)
from repro.runner.telemetry import Telemetry, collect, current

__all__ = [
    "CacheStats", "ResultCache", "configure_cache", "default_cache_dir",
    "get_cache", "reset_cache",
    "ExperimentResult", "run_experiments",
    "latest_manifest_path", "load_manifest", "render_manifest",
    "write_manifest",
    "Telemetry", "collect", "current",
]
