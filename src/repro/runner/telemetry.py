"""Per-experiment run telemetry (legacy shim over :mod:`repro.obs.metrics`).

While an experiment executes, :func:`repro.experiments.common.run_point`
reports every operating point it resolves — cache hit or miss, and the
size of the profiled trace — into the innermost active
:class:`Telemetry` collector.  The executor opens one collector per
experiment, so the run manifest can attribute cache traffic and kernel
counts to individual figures.

Collectors nest (a stack, not a single global): an experiment that
internally replays another experiment's points still attributes them to
itself, and code outside any collector is simply not counted.  The stack
is ``threading.local`` — ``run all --jobs N`` runs experiments in worker
*processes*, but in-process thread pools (and tests) must not interleave
collectors across threads, which a module-level list did.

This module predates the unified metrics registry
(:mod:`repro.obs.metrics`) and is kept because the run-manifest schema
exposes its counters per experiment.  ``record_point`` feeds both: the
nested collector (the manifest view) and the process-wide registry
(``run_point.resolutions`` / ``run_point.kernels``), so ``repro stats``
and the manifest always agree.
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass

from repro.obs import metrics

#: Registry view of every resolved operating point, ``result=hit|miss``.
_POINT_RESOLUTIONS = metrics.counter(
    "run_point.resolutions", "operating-point resolutions by cache result")
_POINT_KERNELS = metrics.counter(
    "run_point.kernels", "kernels in resolved profiles")


@dataclass
class Telemetry:
    """Counters accumulated while one experiment runs.

    Attributes:
        cache_hits: operating points served from the result cache.
        cache_misses: operating points that were traced + profiled anew.
        kernels: total kernels in all resolved profiles (hit or miss).
        points: distinct ``run_point`` resolutions observed.
    """

    cache_hits: int = 0
    cache_misses: int = 0
    kernels: int = 0
    points: int = 0

    def record_point(self, *, kernels: int, hit: bool) -> None:
        """Record one resolved operating point."""
        self.points += 1
        self.kernels += kernels
        if hit:
            self.cache_hits += 1
        else:
            self.cache_misses += 1
        _POINT_RESOLUTIONS.inc(result="hit" if hit else "miss")
        _POINT_KERNELS.inc(kernels)

    def as_dict(self) -> dict[str, int]:
        return {"cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "kernels": self.kernels,
                "points": self.points}


_local = threading.local()


def _stack() -> list[Telemetry]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def current() -> Telemetry | None:
    """The innermost collector active *on this thread*, if any."""
    stack = _stack()
    return stack[-1] if stack else None


@contextlib.contextmanager
def collect():
    """Context manager opening a fresh collector for one experiment."""
    telemetry = Telemetry()
    stack = _stack()
    stack.append(telemetry)
    try:
        yield telemetry
    finally:
        stack.pop()
