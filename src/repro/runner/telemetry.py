"""Per-experiment run telemetry.

While an experiment executes, :func:`repro.experiments.common.run_point`
reports every operating point it resolves — cache hit or miss, and the
size of the profiled trace — into the innermost active
:class:`Telemetry` collector.  The executor opens one collector per
experiment, so the run manifest can attribute cache traffic and kernel
counts to individual figures.

Collectors nest (a stack, not a single global): an experiment that
internally replays another experiment's points still attributes them to
itself, and code outside any collector is simply not counted.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass


@dataclass
class Telemetry:
    """Counters accumulated while one experiment runs.

    Attributes:
        cache_hits: operating points served from the result cache.
        cache_misses: operating points that were traced + profiled anew.
        kernels: total kernels in all resolved profiles (hit or miss).
        points: distinct ``run_point`` resolutions observed.
    """

    cache_hits: int = 0
    cache_misses: int = 0
    kernels: int = 0
    points: int = 0

    def record_point(self, *, kernels: int, hit: bool) -> None:
        """Record one resolved operating point."""
        self.points += 1
        self.kernels += kernels
        if hit:
            self.cache_hits += 1
        else:
            self.cache_misses += 1

    def as_dict(self) -> dict[str, int]:
        return {"cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "kernels": self.kernels,
                "points": self.points}


_stack: list[Telemetry] = []


def current() -> Telemetry | None:
    """The innermost active collector, if any."""
    return _stack[-1] if _stack else None


@contextlib.contextmanager
def collect():
    """Context manager opening a fresh collector for one experiment."""
    telemetry = Telemetry()
    _stack.append(telemetry)
    try:
        yield telemetry
    finally:
        _stack.pop()
