"""Batch experiment executor: isolation, parallelism, determinism.

``repro run all`` used to replay the registry serially and abort on the
first raising experiment.  This executor runs every requested experiment
to completion regardless of individual failures, optionally fans the
batch out over worker processes (``--jobs N``), and always returns
results in the requested order so output is deterministic whatever the
completion order was.

Each experiment is wrapped in a :mod:`repro.runner.telemetry` collector
*and* an observability scope — a :meth:`~repro.obs.spans.SpanTracer.
capture` recording the spans the instrumented subsystems open, plus a
metrics-registry snapshot diff — so its result carries wall-clock time,
cache hit/miss counts, kernel counts, a span summary, per-experiment
metric deltas, and — where the experiment's rows self-report a pass/fail
verdict (Table 1's takeaway checks) — a paper-band summary.  This works
identically in ``--jobs N`` worker processes: each worker's registry
starts empty and the deltas ride home in the pickled result.

Every experiment in a batch is additionally assigned a ``trace_id`` *by
the parent* before dispatch: the id rides into the worker process as a
pickled :class:`~repro.obs.spans.TraceContext` and is replayed there via
:meth:`~repro.obs.spans.SpanTracer.attach`, so the worker's root span
(``experiment.<id>``) — and every engine span under it — joins the trace
the parent named.  The id is stamped on the :class:`ExperimentResult`
and therefore into the run manifest, giving ``repro run all --jobs N``
per-experiment trace ids that correlate manifests with span dumps.

Transient failures — injected faults from an active
:class:`~repro.faults.plan.FaultPlan` (the ``worker.kill`` site models a
worker dying mid-experiment) and anything raising
:class:`~repro.resilience.retry.TransientError` — are retried in place
under a deterministic :class:`~repro.resilience.retry.Retry` policy
before the experiment is recorded as failed; the retry count rides home
in the result counters and the manifest.  Because every experiment is a
pure function of the source tree, a retried attempt produces the *same*
bytes a fault-free run would — the chaos-determinism tests pin this.
"""

from __future__ import annotations

import concurrent.futures
import time
import traceback
from dataclasses import dataclass, field

from repro.faults import sites as fault_sites
from repro.obs import metrics, spans
from repro.resilience.retry import Retry
from repro.runner import telemetry

#: Default transient-failure policy for one experiment: a handful of
#: quick attempts (experiments are seconds, backoff need not be polite)
#: bounded so a permanently failing experiment cannot stall the batch.
DEFAULT_RETRY = Retry(max_attempts=6, base_delay_s=0.01,
                      max_delay_s=0.25, deadline_s=120.0)


@dataclass
class ExperimentResult:
    """Outcome of one experiment in a batch.

    Attributes:
        experiment_id: registry id (``"fig3"``, ...).
        ok: whether ``run``/``render`` completed without raising.
        output: the rendered report (empty on failure).
        error: formatted traceback (empty on success).
        duration_s: wall-clock seconds spent in ``run`` + ``render``.
        counters: telemetry counters (cache hits/misses, kernels, points,
            transient-failure retries).
        bands: ``{"passed": n, "failed": m}`` when the experiment's rows
            carry a boolean ``holds`` verdict, else ``None``.
        spans: per-span-name ``{count, total_s, max_s}`` summary of the
            spans recorded while the experiment ran.
        metrics: metrics-registry delta (what this experiment changed).
        trace_id: trace id every span of this experiment carries
            (pre-assigned by the batch parent, or generated locally).
    """

    experiment_id: str
    ok: bool
    output: str = ""
    error: str = ""
    duration_s: float = 0.0
    counters: dict[str, int] = field(default_factory=dict)
    bands: dict[str, int] | None = None
    spans: dict[str, dict] = field(default_factory=dict)
    metrics: dict[str, dict] = field(default_factory=dict)
    trace_id: str = ""

    def as_dict(self) -> dict:
        return {
            "experiment_id": self.experiment_id,
            "ok": self.ok,
            "error": self.error,
            "duration_s": round(self.duration_s, 6),
            "bands": self.bands,
            "spans": self.spans,
            "metrics": self.metrics,
            "trace_id": self.trace_id,
            **self.counters,
        }


def _band_summary(result: object) -> dict[str, int] | None:
    """Pass/fail counts for experiments whose rows self-report a verdict."""
    if not isinstance(result, list) or not result:
        return None
    verdicts = [getattr(row, "holds") for row in result
                if isinstance(getattr(row, "holds", None), bool)]
    if len(verdicts) != len(result):
        return None
    return {"passed": sum(verdicts),
            "failed": len(verdicts) - sum(verdicts)}


def run_one(experiment_id: str, use_result_cache: bool = True,
            trace_context: dict | None = None,
            retry: Retry | None = None) -> ExperimentResult:
    """Run a single registered experiment under telemetry, never raising.

    Successful results (rendered output + band verdicts) are stored in
    the content-addressed cache keyed on the experiment id and the digest
    of the *entire* package source, so an unchanged tree replays ``run
    all`` from disk while any source edit recomputes everything.
    Failures are never cached.

    ``trace_context`` is a pickled :class:`~repro.obs.spans.TraceContext`
    (its ``as_dict`` form — dicts cross the process boundary without the
    receiving side importing anything first).  When given, it is replayed
    with :meth:`~repro.obs.spans.SpanTracer.attach` so every span this
    experiment opens joins the caller's trace; when absent a fresh trace
    id is generated locally.

    ``retry`` is the transient-failure policy (:data:`DEFAULT_RETRY`
    when ``None``); each attempt passes the ``worker.kill`` and
    ``compute.slow`` fault sites, so a seeded chaos plan exercises the
    retry path deterministically.
    """
    from repro.experiments.registry import REGISTRY
    from repro.runner.cache import get_cache

    if isinstance(trace_context, dict):
        context = spans.TraceContext.from_dict(trace_context)
    elif isinstance(trace_context, spans.TraceContext):
        context = trace_context
    else:
        context = spans.TraceContext(trace_id=spans.new_trace_id())

    started = time.perf_counter()
    registry = metrics.get_registry()
    before = registry.snapshot()
    cache = get_cache()
    cache_key = None
    if experiment_id in REGISTRY:
        cache_key = cache.experiment_key(
            experiment_id, REGISTRY[experiment_id].description)
        if use_result_cache:
            payload = cache.get_payload(cache_key)
            if (isinstance(payload, dict)
                    and isinstance(payload.get("output"), str)):
                return ExperimentResult(
                    experiment_id=experiment_id, ok=True,
                    output=payload["output"],
                    duration_s=time.perf_counter() - started,
                    counters={"experiment_cached": 1},
                    bands=payload.get("bands"),
                    metrics=metrics.diff_snapshots(before,
                                                   registry.snapshot()),
                    trace_id=context.trace_id)

    policy = retry if retry is not None else DEFAULT_RETRY
    retries = 0

    def _count_retry(_attempt: int, _error: BaseException) -> None:
        nonlocal retries
        retries += 1

    def _attempt() -> tuple[object, str]:
        # The fault sites fire inside the retried scope: a scheduled
        # worker kill or slow compute is absorbed here, not surfaced.
        fault_sites.inject_failure("worker.kill",
                                   fault_sites.InjectedWorkerKill)
        fault_sites.inject_delay("compute.slow")
        result = experiment.run()
        return result, experiment.render(result)

    with spans.get_tracer().capture() as scope, \
            telemetry.collect() as counters:
        with spans.attach(context), \
                spans.span(f"experiment.{experiment_id}",
                           category="experiment"):
            try:
                experiment = REGISTRY[experiment_id]
                result, output = policy.call(
                    _attempt, token=experiment_id, on_retry=_count_retry)
            except Exception:  # incl. RetryBudgetExceeded after giveup
                return ExperimentResult(
                    experiment_id=experiment_id, ok=False,
                    error=traceback.format_exc(),
                    duration_s=time.perf_counter() - started,
                    counters={**counters.as_dict(), "retries": retries},
                    trace_id=context.trace_id)
    bands = _band_summary(result)
    if cache_key is not None:
        cache.put_payload(cache_key, {"output": output, "bands": bands})
    duration_s = time.perf_counter() - started
    metrics.histogram(
        "experiment.duration_s",
        "per-experiment wall-clock").observe(duration_s,
                                             experiment=experiment_id)
    return ExperimentResult(
        experiment_id=experiment_id, ok=True, output=output,
        duration_s=duration_s,
        counters={**counters.as_dict(), "experiment_cached": 0,
                  "retries": retries},
        bands=bands,
        spans=spans.aggregate_spans(scope.spans),
        metrics=metrics.diff_snapshots(before, registry.snapshot()),
        trace_id=context.trace_id)


def run_experiments(experiment_ids: list[str], jobs: int = 1,
                    use_result_cache: bool = True,
                    retry: Retry | None = None
                    ) -> list[ExperimentResult]:
    """Run a batch of experiments; results in ``experiment_ids`` order.

    Args:
        experiment_ids: registry ids to run (must all be registered).
        jobs: worker processes; 1 runs in-process.  Workers share the
            disk cache (atomic writes), so a point computed by one worker
            is a hit for the others on the next run.
        use_result_cache: serve unchanged experiments from the result
            cache; pass ``False`` (CLI ``--fresh``) to force recompute.
        retry: transient-failure policy applied inside each experiment
            (:data:`DEFAULT_RETRY` when ``None``; frozen, so it pickles
            into worker processes unchanged).

    One experiment failing — even a worker process dying — never aborts
    the rest of the batch.  Trace ids are assigned here, in the parent,
    one per experiment: the cached-result short circuit, a worker death
    and a completed run all report the same pre-assigned id, so the
    manifest always correlates.
    """
    contexts = {eid: spans.TraceContext(trace_id=spans.new_trace_id())
                for eid in experiment_ids}
    if jobs <= 1 or len(experiment_ids) <= 1:
        return [run_one(eid, use_result_cache, contexts[eid].as_dict(),
                        retry)
                for eid in experiment_ids]

    results: dict[str, ExperimentResult] = {}
    with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = {pool.submit(run_one, eid, use_result_cache,
                               contexts[eid].as_dict(), retry): eid
                   for eid in experiment_ids}
        for future in concurrent.futures.as_completed(futures):
            eid = futures[future]
            try:
                results[eid] = future.result()
            except Exception:
                # The worker process itself died (OOM, segfault, pickle
                # failure): record it like any other experiment failure.
                results[eid] = ExperimentResult(
                    experiment_id=eid, ok=False,
                    error=traceback.format_exc(),
                    trace_id=contexts[eid].trace_id)
    return [results[eid] for eid in experiment_ids]
