"""Shared fixtures for the figure-regeneration benchmarks."""

import pytest

from repro.hw import mi100


@pytest.fixture(scope="session")
def device():
    """The frozen MI100-like device every figure is regenerated on."""
    return mi100()


def emit(title: str, body: str) -> None:
    """Print a rendered figure/table under a banner (visible with -s)."""
    banner = "=" * len(title)
    print(f"\n{title}\n{banner}\n{body}\n")
