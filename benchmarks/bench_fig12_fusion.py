"""Fig. 12: kernel fusion (LayerNorm, Adam) and QKV GEMM fusion.

Bands (paper): LN fusion 6-8x on kernels/traffic/runtime; Adam ~250x
kernels but only 6-8x traffic/runtime; QKV fusion up to ~62% faster, more
at small inputs.
"""

from repro.experiments import fig12

from benchmarks.conftest import emit


def test_bench_fig12(benchmark):
    result = benchmark(fig12.run)
    emit("Fig. 12 — fusion impact", fig12.render(result))

    ln, adam = result.layernorm, result.adam
    assert 5.0 <= ln.kernel_ratio <= 9.0
    assert 5.0 <= ln.bytes_ratio <= 9.0
    assert 5.0 <= ln.time_ratio <= 9.0
    assert 150 <= adam.kernel_ratio <= 350
    assert 4.0 <= adam.bytes_ratio <= 9.0
    assert 0.4 < result.best_qkv_improvement < 1.5
    assert (result.qkv_forward[0].improvement
            > result.qkv_forward[-1].improvement)
