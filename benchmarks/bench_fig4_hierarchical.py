"""Fig. 4: hierarchical Transformer-layer breakdown, FP32 vs. MP.

Bands (paper, FP32 -> MP): linear+FC 57% -> 42%; GEMM total 55% -> 36%;
GeLU 13% -> 15%; DR+RC+LN 5% -> 9%; attention ops 7% -> 9%.
"""

from repro.experiments import fig4

from benchmarks.conftest import emit


def test_bench_fig4(benchmark):
    rows = benchmark(fig4.run)
    emit("Fig. 4 — hierarchical breakdown (Ph1-B32)", fig4.render(rows))

    fp32, mixed = rows["fp32"], rows["mixed"]
    assert 0.50 < fp32.linear_and_fc < 0.62
    assert mixed.linear_and_fc < fp32.linear_and_fc - 0.08
    assert 0.10 < fp32.gemm_total - mixed.gemm_total < 0.25
    assert mixed.fc_gelu > fp32.fc_gelu
    assert mixed.dr_rc_ln > fp32.dr_rc_ln
    assert mixed.attention_ops > fp32.attention_ops
