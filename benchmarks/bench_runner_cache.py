"""Runner-cache benchmarks: compute vs disk-cached run_point.

The acceptance bar for the cache is that serving a ``(Trace, Profile)``
pair from disk beats recomputing it by >=2x on real figure-sized points
(BERT Large); these benchmarks keep that margin visible.
"""

import pytest

from repro.config import BERT_LARGE, Precision, training_point
from repro.experiments import common
from repro.experiments.common import run_point
from repro.profiler.profiler import profile_trace
from repro.runner import cache as cache_module
from repro.trace.bert_trace import build_iteration_trace

POINT = training_point(1, 32, Precision.FP32)


@pytest.fixture()
def isolated_cache(tmp_path):
    cache_module.configure_cache(tmp_path / "cache")
    common.clear_memo()
    yield
    cache_module.reset_cache()
    common.clear_memo()


def test_bench_trace_profile_compute(benchmark, device):
    """The uncached path: build the trace and profile it."""
    def compute():
        trace = build_iteration_trace(BERT_LARGE, POINT)
        return profile_trace(trace.kernels, device)

    profile = benchmark(compute)
    assert len(profile.records) > 1000


def test_bench_run_point_disk_hit(benchmark, isolated_cache):
    """The cached path: load the pickled pair from disk (memo cleared)."""
    run_point(BERT_LARGE, POINT)  # warm the disk cache

    def cached():
        common.clear_memo()  # force the disk path, not the memo
        return run_point(BERT_LARGE, POINT)

    trace, profile = benchmark(cached)
    assert len(trace.kernels) == len(profile.records)


def test_bench_run_point_memo_hit(benchmark, isolated_cache):
    """The in-process path: memo lookup plus defensive copies."""
    run_point(BERT_LARGE, POINT)
    trace, _ = benchmark(run_point, BERT_LARGE, POINT)
    assert len(trace.kernels) > 1000
