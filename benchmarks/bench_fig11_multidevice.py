"""Fig. 11: per-GPU iteration breakdown under multi-device training.

Bands (paper): D2 ~= S1 (overlap hides DP communication); D1 exposes ~19%;
T1 ~9% comm with LAMB halved; T2 ~42% comm with LAMB negligible and the
replicated DR+RC+LN share growing.
"""

from repro.experiments import fig11

from benchmarks.conftest import emit


def test_bench_fig11(benchmark):
    timelines = benchmark(fig11.run)
    emit("Fig. 11 — multi-GPU per-device breakdown", fig11.render(timelines))

    by_tag = {t.label.split(" ")[0]: t for t in timelines}
    assert by_tag["D2"].total < 1.15 * by_tag["S1"].total
    assert 0.12 < by_tag["D1"].communication_fraction < 0.32
    assert 0.05 < by_tag["T1"].communication_fraction < 0.20
    assert (by_tag["T1"].optimizer_fraction
            < 0.8 * by_tag["S1"].optimizer_fraction)
    assert 0.30 < by_tag["T2"].communication_fraction < 0.55
    assert by_tag["T2"].optimizer_fraction < 0.04
    assert (by_tag["T2"].fraction("dr_rc_ln_replicated")
            > by_tag["T1"].fraction("dr_rc_ln_replicated"))
