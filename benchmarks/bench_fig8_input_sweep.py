"""Fig. 8: input-size sweep (mini-batch B and sequence length n).

Shape (paper): LAMB 25% -> 7% as B goes 4 -> 32; attention ops 7% -> 17%
(B-GEMMs 3% -> 8%) moving tokens from B to n at equal token count.
"""

from repro.experiments import fig8

from benchmarks.conftest import emit


def test_bench_fig8(benchmark):
    rows = benchmark(fig8.run)
    emit("Fig. 8 — input-size sweep", fig8.render(rows))

    by_label = {r.label: r for r in rows}
    assert (by_label["Ph1-B4-FP32"].optimizer
            > by_label["Ph1-B16-FP32"].optimizer
            > by_label["Ph1-B32-FP32"].optimizer)
    assert (by_label["Ph2-B4-FP32"].attention_ops
            > 1.8 * by_label["Ph1-B16-FP32"].attention_ops)
    assert (by_label["Ph2-B4-FP32"].bgemm
            > 1.7 * by_label["Ph1-B16-FP32"].bgemm)
