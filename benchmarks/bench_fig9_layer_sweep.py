"""Fig. 9: Transformer layer-size sweep (C1 / C2 / C3).

Shape (paper): linear+FC GEMM and LAMB proportions grow with layer width
(quadratic scaling); FC grows relative to attention; layer-count scaling
leaves the in-layer breakdown unchanged.
"""

from repro.experiments import fig9

from benchmarks.conftest import emit


def test_bench_fig9_width(benchmark):
    rows = benchmark(fig9.run)
    emit("Fig. 9 — layer-width sweep (B=8)", fig9.render(rows))

    by_name = {r.config_name: r for r in rows}
    assert (by_name["C1"].regions.linear_and_fc
            < by_name["C2"].regions.linear_and_fc
            < by_name["C3"].regions.linear_and_fc)
    assert (by_name["C1"].optimizer < by_name["C2"].optimizer
            < by_name["C3"].optimizer)
    assert (by_name["C3"].fc_to_attention > by_name["C1"].fc_to_attention)


def test_bench_fig9_depth(benchmark):
    rows = benchmark(fig9.run_depth_sweep)
    emit("Fig. 9 (companion) — layer-count sweep", fig9.render(rows))
    shallow, _, deep = rows
    assert abs(deep.regions.linear_and_fc
               - shallow.regions.linear_and_fc) < 0.06
