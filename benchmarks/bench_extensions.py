"""Extension studies beyond the paper's figures.

Regenerates the Sec. 7 mode comparison, the ZeRO, windowed-attention,
energy and pipeline-parallelism studies, with their shape criteria
asserted.
"""

from repro.experiments import (energy_study, pipeline_study, sec7_modes,
                               windowed_study, zero_study)

from benchmarks.conftest import emit


def test_bench_sec7_modes(benchmark):
    profiles = benchmark(sec7_modes.run)
    emit("Sec. 7 — pre-training vs fine-tuning vs inference",
         sec7_modes.render(profiles))
    by_mode = {p.mode: p for p in profiles}
    assert by_mode["finetuning"].output < 0.01
    assert by_mode["inference"].optimizer == 0.0
    for p in profiles:
        assert p.transformer > 0.75


def test_bench_zero(benchmark):
    rows = benchmark(zero_study.run)
    emit("ZeRO optimizer-state partitioning", zero_study.render(rows))
    for plain, zero, state_bytes in rows:
        assert zero.optimizer_fraction < 0.5 * plain.optimizer_fraction
        assert zero.communication_fraction > plain.communication_fraction
        assert state_bytes < 2 * 336_000_000 * 4 / zero.devices * 1.1


def test_bench_windowed(benchmark):
    rows = benchmark(windowed_study.run)
    emit("Windowed attention vs sequence length",
         windowed_study.render(rows))
    assert rows[-1].dense_share > 2 * rows[0].dense_share
    assert rows[-1].iteration_speedup > 1.05


def test_bench_energy(benchmark):
    results = benchmark(energy_study.run)
    emit("Iteration energy accounting", energy_study.render(results))
    fp32, mp = results
    assert mp.dynamic_j < fp32.dynamic_j
    for r in results:
        assert r.nmc_lamb_savings > 0.5


def test_bench_pipeline(benchmark):
    pairs = benchmark(pipeline_study.run)
    emit("Pipeline vs tensor parallelism", pipeline_study.render(pairs))
    for ts, pp in pairs:
        assert ts.devices == pp.devices
        # TS communication share grows with ways; PP bubble stays bounded.
        assert pp.fraction("pipeline_bubble") < 0.25


def test_bench_fused_attention(benchmark):
    from repro.experiments import fused_attention_study

    rows = benchmark(fused_attention_study.run)
    emit("Kernel-fused attention vs eager",
         fused_attention_study.render(rows))
    assert all(row.speedup > 2.0 for row in rows)
    assert rows[-1].traffic_ratio > 5 * rows[0].traffic_ratio


def test_bench_transfer(benchmark):
    from repro.experiments import transfer_study

    rows = benchmark(transfer_study.run)
    emit("Cross-device transferability (Sec. 7)",
         transfer_study.render(rows))
    by_balance = sorted(rows, key=lambda r: r.balance)
    non_gemm = [r.non_gemm for r in by_balance]
    assert non_gemm == sorted(non_gemm)


def test_bench_optimized_stack(benchmark):
    from repro.experiments import optimized_stack

    steps = benchmark(optimized_stack.run)
    emit("Sec. 6 optimizations stacked", optimized_stack.render(steps))
    times = [s.iteration_s for s in steps]
    assert times == sorted(times, reverse=True)
    assert 1.2 < steps[-1].speedup_vs(steps[0]) < 1.7


def test_bench_scaling(benchmark):
    from repro.experiments import scaling_trends

    rows = benchmark(scaling_trends.run)
    emit("Future-Transformer scaling trends", scaling_trends.render(rows))
    lamb = [row.lamb for row in rows]
    assert lamb == sorted(lamb)
    assert not rows[-1].fits_32gb


def test_bench_robustness(benchmark):
    from repro.experiments import robustness

    rows = benchmark(robustness.run)
    emit("Conclusions under device perturbation", robustness.render(rows))
    assert all(row.all_hold for row in rows)
