"""Fig. 7: ops/byte and normalized bandwidth demand per operation group.

Shape (paper): all non-GEMM groups below 1 op/byte with high bandwidth
demand; FC GEMMs demand ~20% of the reference bandwidth, attention batched
GEMMs several times more.
"""

from repro.experiments import fig7

from benchmarks.conftest import emit


def test_bench_fig7(benchmark):
    records = benchmark(fig7.run)
    emit("Fig. 7 — op-group intensity and bandwidth demand",
         fig7.render(records))

    groups = {r.label: r for r in records}
    for label in ("LAMBStage1", "LAMBStage2", "Scale+Mask+DR+SM", "GeLU",
                  "DR+RC+LN", "EW multiply"):
        assert groups[label].intensity < 1.0
        assert groups[label].normalized_bandwidth > 0.5
    assert groups["FC GEMMs"].normalized_bandwidth < 0.30
    assert (groups["Attn B-GEMMs"].normalized_bandwidth
            > 3 * groups["FC GEMMs"].normalized_bandwidth)
