"""Benchmark of the batched grid-profiling engine vs the run_point loop.

Prices a 1000-point BERT Large grid (25 batch sizes x 20 sequence lengths
x {FP32, mixed}) two ways:

* **grid**: one :func:`repro.grid.engine.profile_grid` call — the whole
  grid stamped into a single KernelTable and timed in one batched
  tile/wave-model evaluation;
* **loop**: the golden-oracle :func:`repro.experiments.common.run_point`
  loop over the same points, cold per repeat (fresh in-process memo,
  fresh throwaway cache directory, fresh device so the GEMM memo starts
  empty — exactly what a first sweep over a new grid pays).

A handful of sampled points are cross-checked for bit-identical totals,
so the benchmark cannot silently compare against a diverged fast path.

Writes ``BENCH_grid_engine.json`` at the repo root and exits non-zero if
the grid path drops below ``MIN_SPEEDUP`` over the loop or takes longer
than ``MAX_GRID_SECONDS`` end-to-end, so CI catches the engine regressing
into per-point work.

Run: ``PYTHONPATH=src python benchmarks/bench_grid_engine.py``
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from pathlib import Path

from repro.config import BERT_LARGE, Precision, TrainingConfig
from repro.experiments.common import clear_memo, run_point
from repro.grid.engine import grid_points, profile_grid
from repro.hw.device import mi100
from repro.runner.cache import configure_cache, reset_cache

#: Minimum acceptable grid-vs-loop speedup on the full grid.
MIN_SPEEDUP = 10.0

#: Maximum acceptable end-to-end grid time (build + stamp + price).
MAX_GRID_SECONDS = 1.0

GRID_REPEATS = 3
LOOP_REPEATS = 2

BATCH_SIZES = (1, 2, 3, 4, 5, 6, 8, 10, 12, 14, 16, 20, 24, 28, 32, 40,
               48, 56, 64, 80, 96, 112, 128, 160, 192)
SEQ_LENS = (32, 64, 96, 128, 160, 192, 224, 256, 288, 320, 352, 384, 416,
            448, 480, 512, 576, 640, 704, 768)
PRECISIONS = (Precision.FP32, Precision.MIXED)

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_grid_engine.json"


def _points() -> list[TrainingConfig]:
    return [TrainingConfig(batch_size=batch, seq_len=seq_len,
                           precision=precision)
            for batch in BATCH_SIZES
            for seq_len in SEQ_LENS
            for precision in PRECISIONS]


def _time_grid(points) -> tuple[float, int]:
    """Best-of-N end-to-end grid time (fresh device per repeat)."""
    best, rows = float("inf"), 0
    for _ in range(GRID_REPEATS):
        device = mi100()  # cold GEMM memo
        start = time.perf_counter()
        profile = profile_grid(grid_points(BERT_LARGE, points), device)
        best = min(best, time.perf_counter() - start)
        rows = len(profile.trace.table)
    return best, rows


def _time_loop(points) -> float:
    """Best-of-N cold run_point sweep over the same points."""
    best = float("inf")
    for _ in range(LOOP_REPEATS):
        with tempfile.TemporaryDirectory(prefix="bench-grid-") as root:
            clear_memo()
            configure_cache(root)
            device = mi100()
            start = time.perf_counter()
            for training in points:
                run_point(BERT_LARGE, training, device)
            best = min(best, time.perf_counter() - start)
    reset_cache()
    clear_memo()
    return best


def _check_equivalence(points) -> None:
    """Spot-check grid totals against the loop oracle, bit for bit."""
    device = mi100()
    profile = profile_grid(grid_points(BERT_LARGE, points), device)
    stride = max(1, len(points) // 7)
    with tempfile.TemporaryDirectory(prefix="bench-grid-eq-") as root:
        clear_memo()
        configure_cache(root)
        for index in range(0, len(points), stride):
            _, oracle = run_point(BERT_LARGE, points[index], device)
            grid_total = profile.point_total(index)
            if grid_total != oracle.total_time:
                raise AssertionError(
                    f"grid diverged from run_point at point {index} "
                    f"({points[index].label}): {grid_total!r} != "
                    f"{oracle.total_time!r}")
    reset_cache()
    clear_memo()


def run() -> dict:
    points = _points()
    _check_equivalence(points)
    grid_s, rows = _time_grid(points)
    loop_s = _time_loop(points)
    return {
        "model": "BERT Large",
        "device": "mi100",
        "points": len(points),
        "kernel_rows": rows,
        "grid_repeats": GRID_REPEATS,
        "loop_repeats": LOOP_REPEATS,
        "grid_s": grid_s,
        "loop_s": loop_s,
        "loop_per_point_ms": loop_s / len(points) * 1e3,
        "speedup": loop_s / grid_s,
        "min_speedup": MIN_SPEEDUP,
        "max_grid_seconds": MAX_GRID_SECONDS,
    }


def main() -> int:
    payload = run()
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    print(f"{payload['points']} points ({payload['kernel_rows']} kernel "
          f"rows): grid {payload['grid_s']:.3f}s vs loop "
          f"{payload['loop_s']:.2f}s "
          f"({payload['loop_per_point_ms']:.2f} ms/pt) -> "
          f"{payload['speedup']:.1f}x")

    failed = False
    if payload["speedup"] < MIN_SPEEDUP:
        print(f"FAIL: speedup {payload['speedup']:.2f}x < {MIN_SPEEDUP}x")
        failed = True
    if payload["grid_s"] > MAX_GRID_SECONDS:
        print(f"FAIL: grid took {payload['grid_s']:.3f}s "
              f"> {MAX_GRID_SECONDS}s")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
