"""Before/after benchmark of the columnar pass pipeline.

Measures the trace-transform families — elementwise-chain + attention
fusion, activation checkpointing, and the windowed-attention swap — on a
BERT Large iteration trace, once through the legacy per-kernel list scans
(:mod:`repro.trace.reference`) and once through the vectorized
:class:`~repro.trace.passes.PassManager` pipelines.

The legacy side is charged what it actually costs end to end inside the
columnar repo: materializing ``trace.kernels`` from the table, running the
list-scan transforms, and re-columnarizing the result (the rest of the
stack consumes tables).  The columnar side rewrites the table directly.
Each repeat forks a fresh table-backed trace view so neither side benefits
from another's materialization.

Writes ``BENCH_pass_pipeline.json`` at the repo root and exits non-zero if
the combined all-pipelines speedup drops below ``MIN_SPEEDUP``, so CI
catches a regression of the passes back into per-kernel scans.

Run: ``PYTHONPATH=src python benchmarks/bench_pass_pipeline.py``
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.config import BERT_LARGE, Precision, training_point
from repro.fusion.attention_fusion import FusedAttentionPass
from repro.fusion.passes import ElementwiseChainFusionPass
from repro.fusion.windowed_transform import WindowedAttentionPass
from repro.memoryplan.checkpointing import CheckpointingPass
from repro.trace.bert_trace import build_iteration_trace
from repro.trace.passes import PassManager
from repro.trace.reference import (reference_apply_checkpointing,
                                   reference_apply_fused_attention,
                                   reference_apply_windowed_attention,
                                   reference_fuse_elementwise_chains)

#: Minimum acceptable combined (all pipelines) speedup.
MIN_SPEEDUP = 2.0

REPEATS = 3

TRAINING = training_point(1, 32, Precision.FP32)

PIPELINES = {
    "optimized": (
        lambda trace: reference_apply_fused_attention(
            reference_fuse_elementwise_chains(trace)),
        PassManager((ElementwiseChainFusionPass(), FusedAttentionPass())),
    ),
    "checkpointing": (
        reference_apply_checkpointing,
        PassManager((CheckpointingPass(),)),
    ),
    "windowed": (
        reference_apply_windowed_attention,
        PassManager((WindowedAttentionPass(),)),
    ),
}

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_pass_pipeline.json"


def _run_legacy(base, transform) -> tuple[float, int]:
    trace = base.fork()
    t0 = time.perf_counter()
    trace.kernels  # materialize: what list transforms cost in this repo
    out = transform(trace)
    out.table  # re-columnarize: the rest of the stack consumes tables
    t1 = time.perf_counter()
    return t1 - t0, len(out)


def _run_columnar(base, manager: PassManager) -> tuple[float, int]:
    trace = base.fork()
    t0 = time.perf_counter()
    out = manager.run(trace)
    out.table
    t1 = time.perf_counter()
    return t1 - t0, len(out)


def run() -> dict:
    base = build_iteration_trace(BERT_LARGE, TRAINING)
    results = {}
    for name, (legacy_fn, manager) in PIPELINES.items():
        legacy_samples = [_run_legacy(base, legacy_fn)
                          for _ in range(REPEATS)]
        columnar_samples = [_run_columnar(base, manager)
                            for _ in range(REPEATS)]
        assert legacy_samples[0][1] == columnar_samples[0][1], name
        legacy = min(s[0] for s in legacy_samples)
        columnar = min(s[0] for s in columnar_samples)
        results[name] = {
            "signature": manager.signature,
            "kernels_in": len(base),
            "kernels_out": legacy_samples[0][1],
            "legacy_s": legacy,
            "columnar_s": columnar,
            "speedup": legacy / columnar,
        }
    total_legacy = sum(p["legacy_s"] for p in results.values())
    total_columnar = sum(p["columnar_s"] for p in results.values())
    return {
        "model": "BERT Large",
        "point": TRAINING.label,
        "repeats": REPEATS,
        "min_combined_speedup": MIN_SPEEDUP,
        "pipelines": results,
        "combined": {
            "legacy_s": total_legacy,
            "columnar_s": total_columnar,
            "speedup": total_legacy / total_columnar,
        },
    }


def main() -> int:
    payload = run()
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUTPUT}")

    for name, point in payload["pipelines"].items():
        print(f"{name}: {point['kernels_in']} -> {point['kernels_out']} "
              f"kernels | legacy {point['legacy_s'] * 1e3:.1f} ms, "
              f"columnar {point['columnar_s'] * 1e3:.1f} ms, "
              f"{point['speedup']:.1f}x")
    combined = payload["combined"]["speedup"]
    print(f"combined: {combined:.1f}x")
    if combined < MIN_SPEEDUP:
        print(f"FAIL: combined speedup {combined:.2f}x < {MIN_SPEEDUP}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
