"""Fig. 3: high-level runtime breakdown across the five operating points.

Bands (paper): Transformer 68-85%, LAMB 7-25% (rising as tokens shrink and
under MP), output 3-7%, embedding ~0.
"""

from repro.experiments import fig3

from benchmarks.conftest import emit


def test_bench_fig3(benchmark):
    rows = benchmark(fig3.run)
    emit("Fig. 3 — runtime breakdown of BERT pre-training",
         fig3.render(rows))

    by_label = {r.label: r for r in rows}
    for row in rows:
        assert 0.60 < row.transformer < 0.90
        assert row.embedding < 0.02
        assert 0.02 < row.output < 0.08
    assert 0.06 < by_label["Ph1-B32-FP32"].optimizer < 0.11
    assert 0.20 < by_label["Ph1-B4-FP32"].optimizer < 0.32
    assert 0.14 < by_label["Ph1-B32-FP16"].optimizer < 0.22
