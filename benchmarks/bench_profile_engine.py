"""Before/after benchmark of the columnar kernel-table engine.

Measures the three hot stages of every experiment — trace build, profiling
(per-kernel timing), and breakdown aggregation — for BERT Large at the
paper's two pre-training corners (Ph1-B32 and Ph2-B4), once through the
reference implementations (per-layer builder walk, scalar ``kernel_time``
loop, record-scan aggregation; see :mod:`repro.trace.reference`) and once
through the columnar engine (layer-templated build, vectorized
``kernel_times``, masked reductions).

Each repeat constructs fresh device objects so the per-device GEMM memo
starts cold — the reported speedup does not depend on cross-run caching.

Writes ``BENCH_profile_engine.json`` at the repo root and exits non-zero
if the combined build+profile+breakdown speedup drops below
``MIN_SPEEDUP`` on either operating point, so CI catches a regression of
the engine back into scalar paths.

Run: ``PYTHONPATH=src python benchmarks/bench_profile_engine.py``
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.config import BERT_LARGE, Precision, training_point
from repro.hw.device import mi100
from repro.profiler.breakdown import (region_breakdown,
                                      transformer_breakdown, summarize)
from repro.profiler.profiler import profile_trace
from repro.trace.bert_trace import build_iteration_trace
from repro.trace.reference import (reference_iteration_trace,
                                   reference_profile, reference_summarize)

#: Minimum acceptable combined (build+profile+breakdown) speedup.
MIN_SPEEDUP = 3.0

REPEATS = 3

POINTS = {
    "ph1-b32": training_point(1, 32, Precision.FP32),
    "ph2-b4": training_point(2, 4, Precision.FP32),
}

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_profile_engine.json"


def _legacy_breakdowns(profile) -> None:
    reference_summarize(profile)
    transformer_breakdown(profile)
    region_breakdown(profile)


def _columnar_breakdowns(profile) -> None:
    summarize(profile)
    transformer_breakdown(profile)
    region_breakdown(profile)


def _run_legacy(training) -> dict[str, float]:
    device = mi100()  # fresh device: cold GEMM memo, fair comparison
    t0 = time.perf_counter()
    trace = reference_iteration_trace(BERT_LARGE, training)
    t1 = time.perf_counter()
    profile = reference_profile(trace, device)
    t2 = time.perf_counter()
    _legacy_breakdowns(profile)
    t3 = time.perf_counter()
    return {"build_s": t1 - t0, "profile_s": t2 - t1,
            "breakdown_s": t3 - t2, "combined_s": t3 - t0,
            "kernels": len(trace)}


def _run_columnar(training) -> dict[str, float]:
    device = mi100()
    t0 = time.perf_counter()
    trace = build_iteration_trace(BERT_LARGE, training)
    t1 = time.perf_counter()
    profile = profile_trace(trace, device)
    t2 = time.perf_counter()
    _columnar_breakdowns(profile)
    t3 = time.perf_counter()
    return {"build_s": t1 - t0, "profile_s": t2 - t1,
            "breakdown_s": t3 - t2, "combined_s": t3 - t0,
            "kernels": len(trace)}


def _best(runner, training) -> dict[str, float]:
    """Best-of-N wall times (each repeat cold, fresh devices)."""
    samples = [runner(training) for _ in range(REPEATS)]
    best = {key: min(s[key] for s in samples)
            for key in ("build_s", "profile_s", "breakdown_s", "combined_s")}
    best["kernels"] = samples[0]["kernels"]
    return best


def run() -> dict:
    results = {}
    for name, training in POINTS.items():
        legacy = _best(_run_legacy, training)
        columnar = _best(_run_columnar, training)
        assert legacy["kernels"] == columnar["kernels"]
        speedup = {
            stage: legacy[f"{stage}_s"] / columnar[f"{stage}_s"]
            for stage in ("build", "profile", "breakdown", "combined")
        }
        results[name] = {
            "kernels": legacy["kernels"],
            "seq_len": training.seq_len,
            "batch_size": training.batch_size,
            "legacy": {k: v for k, v in legacy.items() if k != "kernels"},
            "columnar": {k: v for k, v in columnar.items()
                         if k != "kernels"},
            "speedup": speedup,
        }
    return {
        "model": "BERT Large",
        "device": "mi100",
        "repeats": REPEATS,
        "min_combined_speedup": MIN_SPEEDUP,
        "points": results,
    }


def main() -> int:
    payload = run()
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUTPUT}")

    failed = False
    for name, point in payload["points"].items():
        s = point["speedup"]
        print(f"{name}: {point['kernels']} kernels | "
              f"build {s['build']:.1f}x, profile {s['profile']:.1f}x, "
              f"breakdown {s['breakdown']:.1f}x, "
              f"combined {s['combined']:.1f}x")
        if s["combined"] < MIN_SPEEDUP:
            print(f"FAIL: {name} combined speedup {s['combined']:.2f}x "
                  f"< {MIN_SPEEDUP}x")
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
