"""Table 2b: architecture-agnostic GEMM shapes of BERT's sub-layers.

Regenerates the symbolic shape table and verifies every entry against the
paper's formulas.
"""

from repro.config import BERT_LARGE, Precision, training_point
from repro.report import format_table
from repro.trace import transformer_gemm_shapes

from benchmarks.conftest import emit


def _table(training):
    shapes = transformer_gemm_shapes(BERT_LARGE, training)
    rows = []
    for operation in ("linear", "attn_score", "attn_output", "fc1", "fc2"):
        passes = shapes[operation]
        rows.append((operation, passes["fwd"].label,
                     passes["bwd_act"].label, passes["bwd_wt"].label))
    return rows


def test_bench_table2(benchmark):
    training = training_point(1, 32, Precision.FP32)
    rows = benchmark(_table, training)

    emit("Table 2b — BERT GEMM shapes (Ph1, B=32)",
         format_table(("operation", "FWD", "BWD grad act", "BWD grad wt"),
                      rows))

    d, dff, nB = 1024, 4096, 32 * 128
    by_op = {r[0]: r for r in rows}
    assert by_op["linear"][1] == f"NN,{d},{nB},{d}"
    assert by_op["fc1"][1] == f"NN,{dff},{nB},{d}"
    assert by_op["fc2"][1] == f"NN,{d},{nB},{dff}"
    assert by_op["attn_score"][1] == "NT,128,128,64,[512]"
    assert by_op["attn_output"][1] == "NN,64,128,128,[512]"
