"""Sec. 6.2.1: near-memory compute for the LAMB optimizer.

Bands (paper): LAMB ~3.8x faster than the optimistic GPU baseline;
end-to-end training 5-22% faster (our small-batch points run a touch
above).
"""

from repro.experiments import nmc_study

from benchmarks.conftest import emit


def test_bench_nmc(benchmark):
    results = benchmark(nmc_study.run)
    emit("Sec. 6.2.1 — LAMB on near-memory compute",
         nmc_study.render(results))

    for r in results:
        assert 3.2 < r.lamb_speedup_vs_optimistic < 4.4
    gains = [r.end_to_end_improvement for r in results]
    assert min(gains) > 0.04 and max(gains) < 0.30
