"""Inactive-hook overhead benchmark for the fault-injection subsystem.

The fault sites sit on hot production lines — every cache read calls
:func:`~repro.faults.sites.corrupt_bytes`, every engine compute calls
:func:`~repro.faults.sites.inject`/:func:`~repro.faults.sites.inject_failure`.
With no active plan these must be effectively free; this benchmark pins
the price.

Methodology: differencing two wall-clock runs of a millisecond-scale
workload cannot resolve a nanosecond-scale effect (scheduler noise in a
shared container is orders of magnitude larger), so each leg is built
from two *separately tight* measurements instead:

* the **hook surcharge** — per-call cost of the real (inactive) helper
  minus a bare no-op stub of the same arity, min-of-repeats over
  :data:`MICRO_CALLS` calls, clamped at zero (the helpers are a global
  read + a ``None`` check and routinely measure level with the stub);
* the **workload unit cost** — per-operation time of the real path the
  hook sits on: a :meth:`ResultCache.get_payload` hit (file read + CRC
  verify + unpickle) and a :meth:`ProfilingService.profile_payload`
  render.

``overhead_pct = hooks_per_op_surcharge / op_cost``.  The floor is
``overhead < MAX_OVERHEAD_PCT`` on both legs.

Writes ``BENCH_chaos.json`` at the repo root and exits non-zero if a
floor is missed.

Run: ``PYTHONPATH=src python benchmarks/bench_chaos.py``
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

from repro.experiments.common import clear_memo
from repro.faults import sites
from repro.runner.cache import ResultCache, reset_cache
from repro.serve.service import ProfilingService

#: Floor enforced by CI: inactive hooks may slow a leg by at most this.
MAX_OVERHEAD_PCT = 2.0

MICRO_CALLS = 200_000
MICRO_REPEATS = 5
CACHE_ENTRIES = 64
CACHE_ROUNDS = 40
RENDER_CALLS = 40
WORKLOAD_REPEATS = 5

SERVE_POINT = "tiny.ph1-b2-fp32"

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_chaos.json"


def _per_call_ns(fn, calls: int = MICRO_CALLS,
                 repeats: int = MICRO_REPEATS) -> float:
    """Min-of-``repeats`` per-call cost of ``fn`` over a tight loop."""
    loop = range(calls)
    for _ in loop:  # warm
        fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in loop:
            fn()
        best = min(best, time.perf_counter() - start)
    return best / calls * 1e9


def _per_op_ns(fn, ops: int, repeats: int = WORKLOAD_REPEATS) -> float:
    fn()  # warm page cache, memos, branch predictors
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best / ops * 1e9


def _surcharge_ns(real_ns: float, stub_ns: float) -> float:
    """The hook's cost beyond a bare call; clamped — the helpers often
    measure level with (or inside noise of) the stub."""
    return max(0.0, real_ns - stub_ns)


def measure_hooks() -> dict:
    """Per-call surcharge of every inactive site helper, in ns."""
    data = b"x" * 4096

    def stub(*args, **kwargs):
        return None

    return {
        "corrupt_bytes": _surcharge_ns(
            _per_call_ns(lambda: sites.corrupt_bytes("cache.corrupt",
                                                     data)),
            _per_call_ns(lambda: stub("cache.corrupt", data))),
        "inject": _surcharge_ns(
            _per_call_ns(lambda: sites.inject("compute.slow")),
            _per_call_ns(lambda: stub("compute.slow"))),
        "inject_failure": _surcharge_ns(
            _per_call_ns(lambda: sites.inject_failure("compute.fail")),
            _per_call_ns(lambda: stub("compute.fail"))),
        "decide": _surcharge_ns(
            _per_call_ns(lambda: sites.decide("worker.kill")),
            _per_call_ns(lambda: stub("worker.kill"))),
    }


def bench_cache_leg(root: Path, hooks: dict) -> dict:
    cache = ResultCache(root / "bench-cache")
    keys = [f"{index:02x}" * 32 for index in range(CACHE_ENTRIES)]
    for key in keys:
        cache.put_payload(key, {"output": "x" * 2048, "key": key})

    def read_all():
        for _ in range(CACHE_ROUNDS):
            for key in keys:
                assert cache.get_payload(key) is not None

    read_ns = _per_op_ns(read_all, CACHE_ENTRIES * CACHE_ROUNDS)
    surcharge_ns = hooks["corrupt_bytes"]  # one hook per read
    return {
        "reads": CACHE_ENTRIES * CACHE_ROUNDS,
        "read_us": read_ns / 1e3,
        "hook_surcharge_ns": surcharge_ns,
        "overhead_pct": surcharge_ns / read_ns * 100.0,
    }


def bench_render_leg(hooks: dict) -> dict:
    service = ProfilingService()

    def render_all():
        for _ in range(RENDER_CALLS):
            service.profile_payload(SERVE_POINT)

    render_ns = _per_op_ns(render_all, RENDER_CALLS)
    surcharge_ns = hooks["inject"] + hooks["inject_failure"]
    return {
        "calls": RENDER_CALLS,
        "render_us": render_ns / 1e3,
        "hook_surcharge_ns": surcharge_ns,
        "overhead_pct": surcharge_ns / render_ns * 100.0,
    }


def run() -> dict:
    sites.deactivate()
    clear_memo()
    try:
        hooks = measure_hooks()
        with tempfile.TemporaryDirectory(prefix="bench-chaos-") as root:
            cache = bench_cache_leg(Path(root), hooks)
            render = bench_render_leg(hooks)
    finally:
        sites.deactivate()
        reset_cache()
        clear_memo()
    return {
        "hook_surcharge_ns": hooks,
        "cache": cache,
        "render": render,
        "floors": {"max_overhead_pct": MAX_OVERHEAD_PCT},
    }


def main() -> int:
    payload = run()
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    hooks = payload["hook_surcharge_ns"]
    print("hook surcharge (inactive, vs a no-op stub): "
          + ", ".join(f"{name} {ns:.0f}ns"
                      for name, ns in sorted(hooks.items())))
    cache, render = payload["cache"], payload["render"]
    print(f"cache: {cache['read_us']:.1f}us/read, hook surcharge "
          f"{cache['hook_surcharge_ns']:.0f}ns -> "
          f"{cache['overhead_pct']:.3f}% overhead")
    print(f"render: {render['render_us']:.0f}us/call, hook surcharge "
          f"{render['hook_surcharge_ns']:.0f}ns -> "
          f"{render['overhead_pct']:.3f}% overhead")

    failed = False
    for leg in ("cache", "render"):
        overhead = payload[leg]["overhead_pct"]
        if overhead >= MAX_OVERHEAD_PCT:
            print(f"FAIL: {leg} inactive-hook overhead {overhead:.3f}% "
                  f">= {MAX_OVERHEAD_PCT}%")
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
