"""Figure/table regeneration benchmarks (pytest-benchmark)."""
