"""Table 1: numeric verification of every takeaway."""

from repro.experiments import takeaways

from benchmarks.conftest import emit


def test_bench_table1(benchmark):
    checks = benchmark(takeaways.run)
    emit("Table 1 — takeaway verification", takeaways.render(checks))

    failing = [c for c in checks if not c.holds]
    assert not failing, [c.takeaway_id for c in failing]
    assert len(checks) >= 15
