"""Fig. 6: arithmetic intensity of every training GEMM in one layer.

Shape (paper): FC GEMMs >> linear GEMMs >> attention batched GEMMs; the
batched GEMMs sit below the memory roofline (Takeaway 6).
"""

from repro.experiments import fig6

from benchmarks.conftest import emit


def test_bench_fig6(benchmark):
    records = benchmark(fig6.run)
    emit("Fig. 6 — arithmetic intensity of BERT training GEMMs",
         fig6.render(records))

    def intensity(op, pass_name="fwd"):
        return next(r for r in records if r.operation == op
                    and r.pass_name == pass_name).intensity

    assert intensity("fc1") > intensity("linear") > intensity("attn_score")
    assert all(r.memory_bound for r in records
               if r.operation in ("attn_score", "attn_output"))
    assert not any(r.memory_bound for r in records
                   if r.operation in ("fc1", "fc2"))
