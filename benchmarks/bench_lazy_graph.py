"""Overhead benchmark of the lazy analytic graph vs the eager builder.

The lazy path buys one linearization for execution *and* tracing, but it
must not make tracing itself expensive: building the BERT Large analytic
graph and lowering its schedule into a :class:`~repro.trace.kernel_table.
KernelTable` has to stay within ``MAX_OVERHEAD``x of the eager
layer-templated builder (:func:`~repro.trace.bert_trace.
build_iteration_trace`) producing the same table.

Measured quantities (best of ``REPEATS``, ``ITERS`` runs each):

* ``eager_s`` — ``build_iteration_trace`` end to end (the baseline).
* ``graph_build_s`` — :func:`~repro.trace.lowerer.bert_iteration_graph`:
  constructing every :class:`~repro.tensor.lazy.LazyOp` node *is* the
  scheduling step, since construction order is the schedule.
* ``lower_s`` — :func:`~repro.trace.lowerer.lower_schedule` mapping the
  schedule 1:1 into kernel rows.
* ``validate_s`` — reported for visibility but outside the enforced
  ratio: validation is a structural debug check (the verify smoke runs
  it), not part of producing a trace, and the eager side has no
  counterpart.

Also asserts the two paths produce bit-identical kernel streams before
timing anything — a fast wrong answer is not an optimization.

Writes ``BENCH_lazy_graph.json`` at the repo root and exits non-zero if
``(graph_build_s + lower_s) / eager_s`` exceeds ``MAX_OVERHEAD``, so CI
catches the graph path regressing into per-node overhead.

Run: ``PYTHONPATH=src python benchmarks/bench_lazy_graph.py``
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.config import BERT_LARGE, Precision, training_point
from repro.trace.bert_trace import build_iteration_trace
from repro.trace.lowerer import bert_iteration_graph, lower_schedule

#: Maximum acceptable (graph build + lower) / eager-builder time ratio.
MAX_OVERHEAD = 2.0

REPEATS = 5
ITERS = 10

TRAINING = training_point(1, 32, Precision.FP32)

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_lazy_graph.json"


def _best(fn) -> float:
    """Best per-iteration wall time over ``REPEATS`` batches of ``ITERS``."""
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        for _ in range(ITERS):
            fn()
        best = min(best, (time.perf_counter() - t0) / ITERS)
    return best


def run() -> dict:
    eager_kernels = build_iteration_trace(
        BERT_LARGE, TRAINING).table.to_kernels()
    graph = bert_iteration_graph(BERT_LARGE, TRAINING)
    graph.validate()
    lazy_kernels = graph.lower().to_kernels()
    if lazy_kernels != eager_kernels:
        raise AssertionError(
            "lazily lowered kernel stream diverges from the eager builder "
            "— refusing to benchmark a wrong answer")

    eager_s = _best(lambda: build_iteration_trace(BERT_LARGE, TRAINING))
    graph_build_s = _best(lambda: bert_iteration_graph(BERT_LARGE, TRAINING))
    lower_s = _best(lambda: lower_schedule(graph.schedule))
    validate_s = _best(graph.validate)
    overhead = (graph_build_s + lower_s) / eager_s
    return {
        "model": "BERT Large",
        "point": TRAINING.label,
        "kernels": len(eager_kernels),
        "schedule_items": len(graph.schedule),
        "repeats": REPEATS,
        "iters": ITERS,
        "max_overhead": MAX_OVERHEAD,
        "eager_s": eager_s,
        "graph_build_s": graph_build_s,
        "lower_s": lower_s,
        "validate_s": validate_s,
        "overhead": overhead,
        "bit_identical": True,
    }


def main() -> int:
    payload = run()
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUTPUT}")

    print(f"{payload['kernels']} kernels | "
          f"eager {payload['eager_s'] * 1e3:.2f} ms, "
          f"graph build {payload['graph_build_s'] * 1e3:.2f} ms + "
          f"lower {payload['lower_s'] * 1e3:.2f} ms "
          f"(validate {payload['validate_s'] * 1e3:.2f} ms), "
          f"overhead {payload['overhead']:.2f}x")
    if payload["overhead"] > MAX_OVERHEAD:
        print(f"FAIL: lazy graph overhead {payload['overhead']:.2f}x > "
              f"{MAX_OVERHEAD}x eager")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
