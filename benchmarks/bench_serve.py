"""Load harness for the profiling server: throughput, p50/p99, floors.

Drives a live in-process server (real sockets, the stdlib client below)
through three request patterns:

* **hot** — concurrent keep-alive clients hammering one already-cached
  ``/profile`` point: pure hot-cache reads, the "heavy traffic" path.
  Reports sustained requests/sec plus client-observed p50/p99 latency;
  the floor is :data:`MIN_HOT_RPS`.
* **cold vs hot** — wall time of a first-touch request (cold engine,
  cold caches, cold GEMM memo) against the p50 of an *uncontended*
  single-client hot run (same one-request-at-a-time conditions); the
  hot cache must be at least :data:`MIN_COLD_HOT_SPEEDUP` faster.
* **coalescing storm** — :data:`STORM_CLIENTS` concurrent *identical*
  requests against cold caches versus executing the same computation
  serially once per request (fresh memo/disk/device each time — what a
  coalescing-free server would pay).  The storm must finish at least
  :data:`MIN_COALESCE_SPEEDUP` times faster, and must have dispatched
  exactly one engine computation.

Writes ``BENCH_serve.json`` at the repo root and exits non-zero if any
floor is missed, so CI catches the serving layer regressing.

Run: ``PYTHONPATH=src python benchmarks/bench_serve.py``
"""

from __future__ import annotations

import asyncio
import json
import statistics
import sys
import tempfile
import time
from pathlib import Path

from repro.experiments.common import clear_memo
from repro.hw.device import mi100
from repro.obs import metrics
from repro.runner.cache import configure_cache, reset_cache
from repro.serve import App, HotCache, ProfilingService, create_server, \
    server_address

#: Floors enforced by CI.
MIN_HOT_RPS = 1000.0
MIN_COALESCE_SPEEDUP = 5.0
MIN_COLD_HOT_SPEEDUP = 3.0

#: Hot pattern: small-body point, concurrent keep-alive clients.
HOT_POINT = "tiny.ph1-b2-fp32"
HOT_CLIENTS = 8
HOT_REQUESTS_PER_CLIENT = 500

#: Storm pattern: a BERT Large point (a real compute, not a toy).
STORM_POINT = "fig3.ph1-b32-fp32"
STORM_CLIENTS = 100
SERIAL_SAMPLES = 5

COLD_SAMPLES = 3

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

_COMPUTATIONS = metrics.counter("serve.computations")


async def _request(host: str, port: int, path: str) -> tuple[int, bytes]:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(f"GET {path} HTTP/1.1\r\nHost: b\r\n\r\n".encode())
        await writer.drain()
        return await _read_response(reader)
    finally:
        writer.close()


async def _read_response(reader) -> tuple[int, bytes]:
    status = int((await reader.readline()).split()[1])
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n"):
            break
        name, _, value = line.decode().partition(":")
        if name.strip().lower() == "content-length":
            length = int(value)
    return status, await reader.readexactly(length)


async def _hot_client(host: str, port: int, path: str, n: int,
                      latencies: list) -> None:
    """One keep-alive connection issuing ``n`` sequential requests."""
    reader, writer = await asyncio.open_connection(host, port)
    request = f"GET {path} HTTP/1.1\r\nHost: b\r\n\r\n".encode()
    try:
        for _ in range(n):
            start = time.perf_counter()
            writer.write(request)
            await writer.drain()
            status, _ = await _read_response(reader)
            latencies.append(time.perf_counter() - start)
            assert status == 200, f"hot read returned {status}"
    finally:
        writer.close()


def _quantile(values: list, q: float) -> float:
    ordered = sorted(values)
    position = q * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    weight = position - lower
    return ordered[lower] * (1 - weight) + ordered[upper] * weight


def _fresh_caches(root: Path, tag: str) -> None:
    """Point the engine at an empty disk cache and clear the memo."""
    clear_memo()
    configure_cache(root / f"cache-{tag}")


async def _bench(root: Path) -> dict:
    app = App(service=ProfilingService(device=mi100()), workers=4,
              queue_limit=128, hot_cache=HotCache())
    server = await create_server(app)
    host, port = server_address(server)
    try:
        # ---------------------------------------------------- cold first hit
        cold_samples = []
        for index in range(COLD_SAMPLES):
            _fresh_caches(root, f"cold{index}")
            app.hot.clear()
            app.service.device = mi100()  # cold GEMM memo
            start = time.perf_counter()
            status, _ = await _request(host, port, f"/profile/{HOT_POINT}")
            cold_samples.append(time.perf_counter() - start)
            assert status == 200
        cold_s = statistics.median(cold_samples)

        # ------------------------------------------------------ hot hammering
        path = f"/profile/{HOT_POINT}"
        await _request(host, port, path)  # ensure warm
        latencies: list = []
        start = time.perf_counter()
        await asyncio.gather(*(
            _hot_client(host, port, path, HOT_REQUESTS_PER_CLIENT, latencies)
            for _ in range(HOT_CLIENTS)))
        hot_wall_s = time.perf_counter() - start
        total = HOT_CLIENTS * HOT_REQUESTS_PER_CLIENT
        hot_p50 = _quantile(latencies, 0.50)

        # Uncontended hot p50 for the cold comparison: one client, so
        # neither side's number includes queuing behind other clients.
        solo_latencies: list = []
        await _hot_client(host, port, path, 200, solo_latencies)
        solo_p50 = _quantile(solo_latencies, 0.50)

        # ------------------------------------------------- coalescing storm
        _fresh_caches(root, "storm")
        app.hot.clear()
        app.service.device = mi100()
        computed_before = _COMPUTATIONS.value(route="profile")
        storm_path = f"/profile/{STORM_POINT}"
        start = time.perf_counter()
        responses = await asyncio.gather(*(
            _request(host, port, storm_path) for _ in range(STORM_CLIENTS)))
        storm_s = time.perf_counter() - start
        assert all(status == 200 for status, _ in responses)
        assert len({body for _, body in responses}) == 1
        storm_computations = \
            _COMPUTATIONS.value(route="profile") - computed_before

        # Serial baseline: the same computation once per client, each
        # paying the full cold path a coalescing-free server would.
        serial_samples = []
        service = app.service
        for index in range(SERIAL_SAMPLES):
            _fresh_caches(root, f"serial{index}")
            service.device = mi100()
            start = time.perf_counter()
            from repro.serve.service import render_json
            render_json(service.profile_payload(STORM_POINT))
            serial_samples.append(time.perf_counter() - start)
        serial_per_request_s = statistics.mean(serial_samples)
        serial_s = serial_per_request_s * STORM_CLIENTS

        latency_stats = metrics.histogram("serve.request_seconds") \
            .stats(route="profile")

        # Server-side per-route view: the /stats endpoint aggregates the
        # same histogram by route, so the report can break latency down
        # without the client tracking which path hit which route.
        status, stats_body = await _request(host, port, "/stats")
        assert status == 200
        server_stats = json.loads(stats_body)
        return {
            "device": "mi100",
            "workers": 4,
            "hot": {
                "point": HOT_POINT,
                "clients": HOT_CLIENTS,
                "requests": total,
                "wall_s": hot_wall_s,
                "rps": total / hot_wall_s,
                "p50_ms": hot_p50 * 1e3,
                "p90_ms": _quantile(latencies, 0.90) * 1e3,
                "p99_ms": _quantile(latencies, 0.99) * 1e3,
            },
            "cold_vs_hot": {
                "cold_ms": cold_s * 1e3,
                "hot_p50_ms": solo_p50 * 1e3,
                "speedup": cold_s / solo_p50,
            },
            "coalesce": {
                "point": STORM_POINT,
                "clients": STORM_CLIENTS,
                "storm_s": storm_s,
                "serial_per_request_ms": serial_per_request_s * 1e3,
                "serial_s": serial_s,
                "speedup": serial_s / storm_s,
                "computations": storm_computations,
            },
            "server_histogram_profile_route": latency_stats,
            "per_route": {
                "requests": server_stats["requests_by_route"],
                "latency": server_stats["route_latency"],
            },
            "flight": server_stats["flight"],
            "floors": {
                "min_hot_rps": MIN_HOT_RPS,
                "min_coalesce_speedup": MIN_COALESCE_SPEEDUP,
                "min_cold_hot_speedup": MIN_COLD_HOT_SPEEDUP,
            },
        }
    finally:
        server.close()
        await server.wait_closed()
        app.close()
        reset_cache()
        clear_memo()


def run() -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-serve-") as root:
        return asyncio.run(_bench(Path(root)))


def main() -> int:
    payload = run()
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    hot, cold, storm = (payload["hot"], payload["cold_vs_hot"],
                        payload["coalesce"])
    print(f"hot: {hot['requests']} reqs x {hot['clients']} clients -> "
          f"{hot['rps']:.0f} req/s "
          f"(p50 {hot['p50_ms']:.2f}ms p99 {hot['p99_ms']:.2f}ms)")
    print(f"cold {cold['cold_ms']:.1f}ms vs hot p50 "
          f"{cold['hot_p50_ms']:.2f}ms -> {cold['speedup']:.1f}x")
    print(f"storm: {storm['clients']} identical requests in "
          f"{storm['storm_s'] * 1e3:.1f}ms vs serial "
          f"{storm['serial_s'] * 1e3:.0f}ms -> {storm['speedup']:.1f}x "
          f"({storm['computations']} computation)")
    for route in sorted(payload["per_route"]["latency"]):
        stats = payload["per_route"]["latency"][route]
        count = payload["per_route"]["requests"][route]["total"]
        print(f"route {route}: {count} reqs, "
              f"p50 {stats['p50_ms']:.2f}ms p99 {stats['p99_ms']:.2f}ms")

    failed = False
    if hot["rps"] < MIN_HOT_RPS:
        print(f"FAIL: hot throughput {hot['rps']:.0f} < {MIN_HOT_RPS} req/s")
        failed = True
    if cold["speedup"] < MIN_COLD_HOT_SPEEDUP:
        print(f"FAIL: cold/hot speedup {cold['speedup']:.1f}x "
              f"< {MIN_COLD_HOT_SPEEDUP}x")
        failed = True
    if storm["speedup"] < MIN_COALESCE_SPEEDUP:
        print(f"FAIL: coalesce speedup {storm['speedup']:.1f}x "
              f"< {MIN_COALESCE_SPEEDUP}x")
        failed = True
    if storm["computations"] != 1:
        print(f"FAIL: storm dispatched {storm['computations']} "
              "computations, expected exactly 1")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
