"""Sec. 4: activation checkpointing overhead.

Bands (paper): ~33% more kernels, ~27% more runtime; LAMB share drops;
in-layer breakdown stable.
"""

from repro.experiments import sec4

from benchmarks.conftest import emit


def test_bench_sec4(benchmark):
    result = benchmark(sec4.run)
    emit("Sec. 4 — activation checkpointing", sec4.render(result))

    assert 0.25 < result.kernel_overhead < 0.45
    assert 0.20 < result.runtime_overhead < 0.40
    assert result.runtime_overhead < result.kernel_overhead
    assert result.lamb_ckpt < result.lamb_base
    assert result.region_shift < 0.05
    assert result.activation_savings > 0.5
