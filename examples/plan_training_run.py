"""Plan a full BERT Large training run: configuration, packing, scale-out.

Puts the planning tools together the way an ML-systems engineer would:

1. pick the per-device configuration (batch, precision, checkpointing)
   that maximizes throughput under the 32 GB memory budget;
2. quantify what Phase-2 sequence packing saves;
3. choose the multi-device layout for a 64-GPU cluster;
4. estimate the wall-clock and energy of the full pre-training schedule
   (90% Phase-1 + 10% Phase-2 iterations, as in Sec. 2.1).

Run:
    python examples/plan_training_run.py
"""

from repro import BERT_LARGE, training_point
from repro.core import advise, render_advice
from repro.data import MarkovCorpus, SequencePacker, Vocab
from repro.distributed import (PCIE4, XGMI, data_parallel_timeline,
                               hybrid_timeline)
from repro.hw import iteration_energy, mi100
from repro.profiler import profile_trace
from repro.report import format_table
from repro.trace import build_iteration_trace

TOTAL_STEPS = 31_250  # reference large-batch pre-training step budget
PHASE1_FRACTION = 0.9
CLUSTER = 64


def main() -> None:
    device = mi100()

    print("step 1 — per-device configuration (32 GB budget)")
    advice = advise(BERT_LARGE, device, batch_sizes=(16, 32, 64, 96))
    print(render_advice(advice))
    best = advice.best.training
    print(f"\npicked: {advice.best.label} at "
          f"{advice.best.tokens_per_second:,.0f} tokens/s\n")

    print("step 2 — Phase-2 sequence packing")
    vocab = Vocab(size=BERT_LARGE.vocab_size)
    packer = SequencePacker(vocab, MarkovCorpus(vocab, seed=0),
                            seq_len=512, min_pair=48, max_pair=192, seed=1)
    saved = packer.padding_saved(512)
    print(f"packing ~48-192-token pairs into n=512 sequences avoids "
          f"{saved:.0%} of the sequences (and their quadratic attention "
          "cost)\n")

    print(f"step 3 — layout for {CLUSTER} GPUs (per-device "
          f"B={best.batch_size})")
    layouts = [
        data_parallel_timeline(BERT_LARGE, best, device, PCIE4, CLUSTER,
                               overlap=True, label=f"{CLUSTER}-way DP"),
        hybrid_timeline(BERT_LARGE, best, device, ts_link=XGMI,
                        dp_link=PCIE4, ts_ways=4,
                        dp_replicas=CLUSTER // 4,
                        label=f"4-way TS x {CLUSTER // 4}-way DP"),
    ]
    rows = [(t.label, f"{t.total * 1e3:.0f} ms",
             f"{t.communication_fraction:.1%}",
             f"{best.tokens_per_iteration * t.devices / t.total:,.0f}")
            for t in layouts]
    print(format_table(("layout", "iteration", "comm share",
                        "cluster tokens/s"), rows))
    chosen = min(layouts, key=lambda t: t.total)
    print(f"\npicked: {chosen.label}\n")

    print("step 4 — schedule estimate (90% Phase-1, 10% Phase-2)")
    phase2 = training_point(2, max(1, best.batch_size // 4),
                            best.precision)
    rows = []
    total_hours = 0.0
    total_mwh = 0.0
    for phase, steps in ((best, int(TOTAL_STEPS * PHASE1_FRACTION)),
                         (phase2, int(TOTAL_STEPS * (1 - PHASE1_FRACTION)))):
        # Per-iteration time under the chosen cluster layout for this phase.
        timeline = hybrid_timeline(BERT_LARGE, phase, device, ts_link=XGMI,
                                   dp_link=PCIE4, ts_ways=4,
                                   dp_replicas=CLUSTER // 4)
        profile = profile_trace(
            build_iteration_trace(BERT_LARGE, phase).kernels, device)
        energy = iteration_energy(profile)
        hours = steps * timeline.total / 3600
        mwh = steps * energy.total_j * timeline.devices / 3.6e9
        total_hours += hours
        total_mwh += mwh
        rows.append((phase.label, steps, f"{timeline.total * 1e3:.0f} ms",
                     f"{hours:.1f} h", f"{mwh * 1000:.1f} kWh"))
    print(format_table(("phase", "steps", "per-iteration", "wall clock",
                        "device energy"), rows))
    print(f"\nestimated total: {total_hours:.1f} hours on {CLUSTER} GPUs, "
          f"{total_mwh * 1000:.0f} kWh of device energy")


if __name__ == "__main__":
    main()
