"""Accelerator design-space exploration (the paper's Sec. 7 argument).

The paper claims its takeaways transfer across devices by compute/bandwidth
ratio, and that as compute scales faster than memory the memory-bound
operations become the bottleneck.  This example makes that concrete:

1. sweeps hypothetical accelerators with growing compute at fixed
   bandwidth and shows the non-GEMM share taking over;
2. shows the same iteration on bandwidth-boosted devices;
3. prices the near-memory-compute fix for the LAMB slice on each device.

Run:
    python examples/accelerator_design_space.py
"""

from repro import BERT_LARGE, Precision, training_point
from repro.hw import balanced_accelerator, mi100
from repro.nmc import evaluate_lamb_offload, hbm2_bank_nmc
from repro.profiler import profile_trace, summarize
from repro.report import format_table
from repro.trace import build_iteration_trace


def sweep_compute(training) -> list[tuple]:
    """Grow peak compute 1x..8x at fixed MI100 bandwidth."""
    trace = build_iteration_trace(BERT_LARGE, training)
    rows = []
    for multiplier in (1, 2, 4, 8):
        device = balanced_accelerator(46.1 * multiplier, 1228.8,
                                      name=f"{multiplier}x-compute")
        stats = summarize(profile_trace(trace.kernels, device))
        rows.append((device.name, f"{stats['total_time_s'] * 1e3:.0f} ms",
                     f"{stats['gemm']:.1%}", f"{stats['non_gemm']:.1%}",
                     f"{stats['optimizer']:.1%}"))
    return rows


def sweep_bandwidth(training) -> list[tuple]:
    """Grow memory bandwidth 1x..4x at fixed compute."""
    trace = build_iteration_trace(BERT_LARGE, training)
    rows = []
    for multiplier in (1, 2, 4):
        device = balanced_accelerator(46.1, 1228.8 * multiplier,
                                      name=f"{multiplier}x-bandwidth")
        stats = summarize(profile_trace(trace.kernels, device))
        rows.append((device.name, f"{stats['total_time_s'] * 1e3:.0f} ms",
                     f"{stats['gemm']:.1%}", f"{stats['non_gemm']:.1%}"))
    return rows


def main() -> None:
    training = training_point(1, 32, Precision.FP32)
    print(f"workload: BERT Large, {training.label}\n")

    print("compute scaling at fixed bandwidth — memory-bound ops take over")
    print(format_table(("device", "iteration", "GEMM", "non-GEMM", "LAMB"),
                       sweep_compute(training)))
    print()

    print("bandwidth scaling at fixed compute — GEMMs re-dominate")
    print(format_table(("device", "iteration", "GEMM", "non-GEMM"),
                       sweep_bandwidth(training)))
    print()

    print("near-memory compute for LAMB on the MI100-class baseline")
    nmc = hbm2_bank_nmc()
    for point in (training, training_point(1, 4, Precision.FP32),
                  training_point(1, 32, Precision.MIXED)):
        result = evaluate_lamb_offload(BERT_LARGE, point, mi100(), nmc)
        print(f"  {result.label:14s} LAMB "
              f"{result.lamb_speedup_vs_optimistic:.2f}x vs optimistic GPU, "
              f"end-to-end {result.end_to_end_improvement:+.1%}")


if __name__ == "__main__":
    main()
