"""Quickstart: characterize one BERT Large pre-training iteration.

Builds the kernel trace of a Ph1-B32 iteration, prices it on the MI100-like
device model, and prints the paper's headline breakdowns (Figs. 3 and 4)
plus the GEMM-heterogeneity view (Fig. 6).

Run:
    python examples/quickstart.py
"""

from repro import BERT_LARGE, Precision, training_point
from repro.experiments import fig3, fig4, fig6
from repro.hw import mi100
from repro.profiler import profile_trace, summarize
from repro.trace import build_iteration_trace


def main() -> None:
    device = mi100()
    training = training_point(1, 32, Precision.FP32)

    trace = build_iteration_trace(BERT_LARGE, training)
    profile = profile_trace(trace.kernels, device)
    stats = summarize(profile)

    print(f"model: {BERT_LARGE.name}  "
          f"({BERT_LARGE.total_parameters() / 1e6:.0f}M parameters)")
    print(f"point: {training.label}  device: {device.name}")
    print(f"kernels launched: {len(trace)}   "
          f"modeled iteration: {stats['total_time_s'] * 1e3:.1f} ms")
    print(f"GEMM share: {stats['gemm']:.1%}   "
          f"non-GEMM (memory-bound): {stats['non_gemm']:.1%}\n")

    print("Fig. 3 — where the time goes, across operating points")
    print(fig3.render(fig3.run()))
    print()

    print("Fig. 4 — inside the Transformer layers (FP32 vs mixed precision)")
    print(fig4.render(fig4.run()))
    print()

    print("Fig. 6 — not all GEMMs are equal (ops/byte per training GEMM)")
    print(fig6.render(fig6.run()))


if __name__ == "__main__":
    main()
