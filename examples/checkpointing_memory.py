"""Activation checkpointing: memory capacity vs. recompute time (Sec. 4).

Shows the footprint of BERT Large training with and without checkpointing,
the largest mini-batch that fits a 32 GB device in each mode, and the
runtime price paid for the capacity.

Run:
    python examples/checkpointing_memory.py
"""

import dataclasses

from repro import BERT_LARGE, Precision, training_point
from repro.experiments import sec4
from repro.memoryplan import max_batch_size, training_footprint
from repro.report import format_table

CAPACITY_GB = 32.0


def footprint_row(label, training):
    f = training_footprint(BERT_LARGE, training)
    return (label, f"{f.weights / 1e9:.2f}", f"{f.optimizer_state / 1e9:.2f}",
            f"{f.activations / 1e9:.2f}", f"{f.total / 1e9:.2f}",
            "yes" if f.fits(CAPACITY_GB) else "NO")


def main() -> None:
    base = training_point(1, 32, Precision.FP32)
    ckpt = dataclasses.replace(base, activation_checkpointing=True)
    mp = training_point(1, 32, Precision.MIXED)

    print(f"BERT Large memory footprint on a {CAPACITY_GB:.0f} GB device "
          "(GB)")
    rows = [footprint_row("B=32 FP32", base),
            footprint_row("B=32 FP32 + ckpt", ckpt),
            footprint_row("B=32 MP", mp),
            footprint_row("B=96 FP32",
                          dataclasses.replace(base, batch_size=96)),
            footprint_row("B=96 FP32 + ckpt",
                          dataclasses.replace(ckpt, batch_size=96))]
    print(format_table(("configuration", "weights", "opt state",
                        "activations", "total", "fits?"), rows))
    print()

    for precision in (Precision.FP32, Precision.MIXED):
        probe = training_point(1, 1, precision)
        plain = max_batch_size(BERT_LARGE, probe, CAPACITY_GB)
        with_ckpt = max_batch_size(
            BERT_LARGE,
            dataclasses.replace(probe, activation_checkpointing=True),
            CAPACITY_GB)
        print(f"largest B that fits ({precision.value}): "
              f"{plain} without checkpointing, {with_ckpt} with")
    print()

    print("what the capacity costs (Sec. 4 bands: ~+33% kernels, "
          "~+27% runtime):")
    print(sec4.render(sec4.run()))


if __name__ == "__main__":
    main()
