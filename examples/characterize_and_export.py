"""One-call characterization, roofline plot, and rocprof-style export.

Uses the high-level `repro.core.characterize` API to analyze an operating
point end to end, draws the roofline with the paper's operation groups
placed on it, compares the analytical and event-driven timing backends,
and writes the full kernel profile as CSV/JSON for spreadsheet analysis.

Run:
    python examples/characterize_and_export.py [output_dir]
"""

import sys
import tempfile
from pathlib import Path

from repro import BERT_LARGE, Precision, training_point
from repro.core import characterize
from repro.experiments import fig7
from repro.hw import compare_backends, mi100
from repro.profiler import write_csv, write_json
from repro.report import roofline_plot


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        tempfile.mkdtemp(prefix="repro-profile-"))
    out_dir.mkdir(parents=True, exist_ok=True)

    result = characterize(BERT_LARGE,
                          training_point(1, 32, Precision.FP32))
    print(result.report())
    print()

    print("roofline — where each operation group lives")
    points = [(r.label, r.intensity) for r in fig7.run()]
    print(roofline_plot(points, mi100()))
    print()

    comparison = compare_backends(result.trace.kernels, mi100())
    print("timing-backend cross-check: analytical "
          f"{comparison.analytical_s * 1e3:.1f} ms vs event-driven "
          f"{comparison.simulated_s * 1e3:.1f} ms "
          f"(ratio {comparison.ratio:.3f})")
    print()

    csv_path = out_dir / "bert_large_ph1_b32.csv"
    json_path = out_dir / "bert_large_ph1_b32.json"
    write_csv(result.profile, str(csv_path))
    write_json(result.profile, str(json_path))
    print(f"kernel profile written to:\n  {csv_path}\n  {json_path}")
    print(f"({len(result.trace)} kernels; load the CSV in pandas or a "
          "spreadsheet to slice it like a rocprof trace)")


if __name__ == "__main__":
    main()
