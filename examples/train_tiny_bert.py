"""Train a tiny BERT end to end on synthetic data — for real.

Uses the executable NumPy substrate: autograd, the full pre-training model
(MLM + NSP heads), the LAMB optimizer with linear-warmup scheduling, and
the Markov-chain corpus whose bigram structure the model can actually
learn.  Prints the loss curve and shows it dropping below the
uniform-guess baseline.

Run:
    python examples/train_tiny_bert.py
"""

import numpy as np

from repro import BERT_TINY
from repro.data import MarkovCorpus, PreTrainingDataset, Vocab
from repro.model import BertForPreTraining
from repro.optim import Lamb
from repro.train import Trainer, linear_warmup

# LAMB is built for large-batch training (Sec. 2.4): its trust ratio
# shrinks steps while parameter norms are small, so the tiny model wants a
# relatively large base LR, a bigger batch and a few hundred steps.
STEPS = 400
BATCH = 32
BASE_LR = 3e-2


def main() -> None:
    vocab = Vocab(size=BERT_TINY.vocab_size)
    corpus = MarkovCorpus(vocab, seed=0, branching=2)
    dataset = PreTrainingDataset(vocab, corpus, seq_len=32, seed=1)

    model = BertForPreTraining(BERT_TINY, seed=2, dropout_p=0.0)
    print(f"model: {BERT_TINY.name} "
          f"({model.num_parameters() / 1e3:.0f}k parameters), "
          f"optimizer: LAMB")

    optimizer = Lamb(model.parameters(), lr=BASE_LR, weight_decay=0.0)
    trainer = Trainer(model, optimizer, dataset,
                      lr_schedule=lambda step: linear_warmup(
                          step, base_lr=BASE_LR, warmup_steps=20,
                          total_steps=STEPS))

    uniform = np.log(BERT_TINY.vocab_size) + np.log(2)
    print(f"uniform-guess baseline loss: {uniform:.3f}\n")
    history = trainer.train(batch_size=BATCH, steps=STEPS, log_every=50)

    first = float(np.mean(history.losses()[:5]))
    last = float(np.mean(history.losses()[-5:]))
    total_s = sum(s.seconds for s in history.steps)
    print(f"\nloss: {first:.3f} -> {last:.3f} over {STEPS} steps "
          f"({total_s:.1f}s wall clock)")
    if last < uniform - 1.0:
        print("the model learned the corpus' bigram structure "
              "(well below the uniform baseline)")
    else:
        print("warning: loss did not clearly beat the baseline")

    # Where the real NumPy step spends its time (the executable-substrate
    # analogue of the paper's Fig. 3 phases).
    from repro.profiler import profile_steps, summarize_wallclock
    from repro.train import evaluate

    measured = profile_steps(model, optimizer,
                             dataset.batches(BATCH, 4), warmup=1)
    stats = summarize_wallclock(measured)
    print(f"\nmeasured step breakdown: "
          f"forward {stats['forward_fraction']:.0%}, "
          f"backward {stats['backward_fraction']:.0%}, "
          f"LAMB update {stats['optimizer_fraction']:.0%}")

    result = evaluate(model, dataset, batch_size=BATCH, batches=4)
    print(f"held-out accuracy: MLM top-1 {result.mlm_accuracy:.1%} "
          f"(chance {1 / BERT_TINY.vocab_size:.2%}), "
          f"NSP {result.nsp_accuracy:.1%} (chance 50%)")


if __name__ == "__main__":
    main()
