"""Plan multi-GPU BERT training: data parallelism vs. tensor slicing.

Reproduces the Fig. 11 configurations and then goes beyond the paper:
scales tensor slicing across way counts, compares interconnects, and
evaluates the hybrid (TS-inside-node x DP-across-nodes) layout.

Run:
    python examples/distributed_scaleout.py
"""

from repro import BERT_LARGE, Precision, training_point
from repro.distributed import (PCIE4, XGMI, data_parallel_timeline,
                               hybrid_timeline, single_device_timeline,
                               tensor_slicing_timeline)
from repro.experiments import fig11
from repro.hw import mi100
from repro.report import format_table


def main() -> None:
    device = mi100()
    b16 = training_point(1, 16, Precision.FP32)

    print("Fig. 11 — the paper's five configurations (PCIe 4.0)")
    print(fig11.render(fig11.run()))
    print()

    print("tensor-slicing scaling: communication squeezes out compute")
    rows = []
    for ways in (1, 2, 4, 8, 16):
        if ways == 1:
            timeline = single_device_timeline(BERT_LARGE, b16, device)
        else:
            timeline = tensor_slicing_timeline(BERT_LARGE, b16, device,
                                               PCIE4, ways)
        rows.append((f"{ways}-way", f"{timeline.total * 1e3:.0f} ms",
                     f"{timeline.communication_fraction:.1%}",
                     f"{timeline.optimizer_fraction:.1%}"))
    print(format_table(("slicing", "per-iteration", "comm share",
                        "LAMB share"), rows))
    print()

    print("interconnect sensitivity (8-way TS)")
    rows = []
    for link in (PCIE4, XGMI):
        timeline = tensor_slicing_timeline(BERT_LARGE, b16, device, link, 8)
        rows.append((link.name, f"{timeline.total * 1e3:.0f} ms",
                     f"{timeline.communication_fraction:.1%}"))
    print(format_table(("link", "per-iteration", "comm share"), rows))
    print()

    print("full planner: every (TS x PP x DP) factorization of 32 GPUs")
    from repro.distributed import plan, render_plan
    layouts = plan(BERT_LARGE, b16, device, devices=32, intra_link=XGMI,
                   inter_link=PCIE4, micro_batches=8)
    print(render_plan(layouts[:6], b16.tokens_per_iteration))
    print()

    print("128 GPUs, three layouts (per-device B=16)")
    layouts = [
        data_parallel_timeline(BERT_LARGE, b16, device, PCIE4, 128,
                               overlap=True, label="128-way DP"),
        hybrid_timeline(BERT_LARGE, b16, device, ts_link=XGMI,
                        dp_link=PCIE4, ts_ways=4, dp_replicas=32,
                        label="4-way TS x 32-way DP"),
        hybrid_timeline(BERT_LARGE, b16, device, ts_link=XGMI,
                        dp_link=PCIE4, ts_ways=8, dp_replicas=16,
                        label="8-way TS x 16-way DP"),
    ]
    rows = [(t.label, f"{t.total * 1e3:.0f} ms",
             f"{t.communication_fraction:.1%}",
             f"{t.optimizer_fraction:.1%}") for t in layouts]
    print(format_table(("layout", "per-iteration", "comm share",
                        "LAMB share"), rows))


if __name__ == "__main__":
    main()
